//! The sweep-serving daemon.
//!
//! A [`Server`] owns one [`BatchRunner`] — and through it one warm
//! [`db_pim::SimSession`] artifact cache per operand width — and serves the
//! [`protocol`](crate::protocol) over TCP. Connections are dispatched to a
//! fixed worker pool; every worker answers requests against the *same*
//! shared session caches, so N clients asking for the same (model, width)
//! trigger exactly one artifact preparation (the session layer's
//! single-flight guarantee) and every later request is served warm.
//!
//! Sweeps stream: each (model, width, geometry) entry is written to the
//! client as soon as it is computed, so a long sweep delivers its first
//! results while the rest are still simulating.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use db_pim::{BatchRunner, PipelineConfig, PipelineError};
use dbpim_nn::ModelKind;
use dbpim_sim::SparsityConfig;

use crate::protocol::{
    write_message, ErrorKind, ErrorResponse, Request, Response, ServerStats, ShardAnnotation,
    ShardState, ShardStatus, PROTOCOL_VERSION,
};

/// Upper bound on distinct shards the progress registry remembers; beyond
/// it the stalest entry is dropped — the registry is a monitoring surface,
/// not the fleet's source of truth, so bounded forgetting beats unbounded
/// growth in a long-lived daemon.
const MAX_TRACKED_SHARDS: usize = 256;

/// A server-side request deadline, armed from a request's `deadline_ms`.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    expires: Option<Instant>,
}

impl Deadline {
    fn new(deadline_ms: Option<u64>) -> Self {
        Self {
            expires: deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms.min(u64::from(u32::MAX)))),
        }
    }

    fn expired(&self) -> bool {
        self.expires.is_some_and(|at| Instant::now() >= at)
    }

    fn error(context: &str) -> Response {
        Response::Error {
            error: ErrorResponse {
                kind: ErrorKind::DeadlineExceeded,
                message: format!("{context} exceeded its deadline"),
            },
        }
    }
}

/// Configuration of a serving daemon.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind (e.g. `"127.0.0.1:7531"`; port `0` picks a free one).
    pub addr: String,
    /// Worker threads answering requests (each handles one connection at a
    /// time).
    pub threads: usize,
    /// How often an idle connection wakes up to check for daemon shutdown.
    /// This is *not* an idle-disconnect limit — a quiet client stays
    /// connected indefinitely.
    pub poll_interval: Duration,
    /// The pipeline configuration every session is derived from.
    pub pipeline: PipelineConfig,
    /// LRU cap on resident prepared models per per-width session cache
    /// (`None` = unbounded, the historical behaviour). Evictions are
    /// counted in the `CacheStats` response.
    pub cache_cap: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7531".to_string(),
            threads: 4,
            poll_interval: Duration::from_millis(200),
            pipeline: PipelineConfig::paper(),
            cache_cap: None,
        }
    }
}

/// A serving failure.
#[derive(Debug)]
pub enum ServeError {
    /// Socket set-up or accept failure.
    Io(std::io::Error),
    /// The pipeline configuration was rejected.
    Pipeline(PipelineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

/// State shared by the acceptor and every worker.
struct Shared {
    runner: BatchRunner,
    local_addr: SocketAddr,
    poll_interval: Duration,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
    started: Instant,
    /// Progress of shard-tagged explorations, keyed by (fleet, shard).
    shards: Mutex<Vec<ShardStatus>>,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            uptime: self.started.elapsed(),
            cache: self.runner.cache_stats(),
        }
    }

    /// Records shard progress: `completed_delta` freshly finished points
    /// and a lifecycle observation. A non-failed shard auto-promotes to
    /// `Finished` once its completed count reaches its total.
    fn shard_touch(&self, tag: &ShardAnnotation, completed_delta: usize, state: ShardState) {
        let now = db_pim::dse::unix_time_ms();
        let mut shards = self.shards.lock().expect("shard registry lock");
        let entry = match shards.iter_mut().find(|s| s.fleet == tag.fleet && s.shard == tag.shard) {
            Some(entry) => entry,
            None => {
                if shards.len() >= MAX_TRACKED_SHARDS {
                    if let Some(stalest) = shards
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.updated_at_ms)
                        .map(|(i, _)| i)
                    {
                        shards.remove(stalest);
                    }
                }
                shards.push(ShardStatus {
                    fleet: tag.fleet.clone(),
                    shard: tag.shard,
                    of: tag.of,
                    total_points: tag.points,
                    completed_points: 0,
                    state: ShardState::Running,
                    updated_at_ms: now,
                });
                shards.last_mut().expect("just pushed")
            }
        };
        entry.of = tag.of;
        entry.total_points = entry.total_points.max(tag.points);
        entry.completed_points += completed_delta;
        entry.state = match state {
            ShardState::Failed => ShardState::Failed,
            _ if entry.completed_points >= entry.total_points => ShardState::Finished,
            other => other,
        };
        entry.updated_at_ms = now;
    }

    /// The registry snapshot, most recently updated first (stable for
    /// equal timestamps).
    fn shard_statuses(&self) -> Vec<ShardStatus> {
        let mut shards = self.shards.lock().expect("shard registry lock").clone();
        shards.sort_by_key(|s| std::cmp::Reverse(s.updated_at_ms));
        shards
    }

    /// Flags shutdown and wakes the blocked acceptor with a dummy
    /// connection.
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// A bound (not yet running) sweep-serving daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    threads: usize,
}

impl Server {
    /// Binds the listening socket and builds the warm-cache session state.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Pipeline`] for an unusable pipeline
    /// configuration and [`ServeError::Io`] when the socket cannot be bound.
    pub fn bind(config: ServeConfig) -> Result<Self, ServeError> {
        let runner = BatchRunner::new(config.pipeline)?.with_cache_cap(config.cache_cap);
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::other(format!("unresolvable address {}", config.addr))
            })?)?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                runner,
                local_addr,
                poll_interval: config.poll_interval,
                shutdown: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                started: Instant::now(),
                shards: Mutex::new(Vec::new()),
            }),
            threads: config.threads.max(1),
        })
    }

    /// The address the daemon is listening on (useful with port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves connections until a [`Request::Shutdown`] arrives, then joins
    /// the worker pool and returns.
    ///
    /// # Errors
    ///
    /// Propagates acceptor I/O failures (individual connection failures are
    /// answered on the connection and never abort the daemon).
    pub fn run(self) -> std::io::Result<()> {
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(self.threads);
        for worker in 0..self.threads {
            let receiver = Arc::clone(&receiver);
            let shared = Arc::clone(&self.shared);
            workers.push(
                std::thread::Builder::new().name(format!("dbpim-serve-worker-{worker}")).spawn(
                    move || loop {
                        let stream = {
                            let guard = receiver.lock().expect("worker queue lock");
                            guard.recv()
                        };
                        match stream {
                            Ok(stream) => handle_connection(stream, &shared),
                            Err(_) => break, // acceptor hung up: drain done
                        }
                    },
                )?,
            );
        }

        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break; // the wake-up connection (or any later one) lands here
            }
            match stream {
                Ok(stream) => {
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE under fd
                    // exhaustion): keep serving, but back off instead of
                    // spinning hot on an error that fails instantly.
                    std::thread::sleep(Duration::from_millis(50));
                    continue;
                }
            }
        }

        drop(sender);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }

    /// Binds and runs the daemon on a background thread, returning a handle
    /// with the bound address — the in-process form used by tests and the
    /// `serve_bench` load generator.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::bind`] failures (the spawn itself is infallible).
    pub fn spawn(config: ServeConfig) -> Result<ServerHandle, ServeError> {
        let server = Self::bind(config)?;
        let addr = server.local_addr();
        let shared = Arc::clone(&server.shared);
        let thread = std::thread::Builder::new()
            .name("dbpim-serve-acceptor".to_string())
            .spawn(move || server.run())
            .map_err(ServeError::Io)?;
        Ok(ServerHandle { addr, shared, thread })
    }
}

/// Handle to a daemon running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without needing a client connection.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Waits for the daemon to exit (send [`Request::Shutdown`] first, or
    /// call [`Self::request_shutdown`]).
    ///
    /// # Errors
    ///
    /// Propagates the acceptor's exit status.
    pub fn join(self) -> std::io::Result<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

/// Serves one connection until the peer disconnects or the daemon shuts
/// down. Malformed lines are answered with [`Response::Error`]; the
/// connection stays open.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    // A finite read timeout turns a blocked read into a periodic shutdown
    // check, so a quiet connection cannot pin a worker past daemon exit.
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // `read_line` appends, so a timeout mid-line keeps the partial data
        // and the next pass continues the same line.
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        let text = line.trim_end_matches(['\r', '\n']).trim();
        if text.is_empty() {
            line.clear();
            continue;
        }
        // A shutdown daemon answers nothing further — even on connections
        // that kept the pipe busy. Dropping the connection (rather than
        // draining queued requests) is what lets a fleet's failure
        // detector notice a dying worker promptly.
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let disconnect = match serde_json::from_str::<Request>(text) {
            Ok(request) => handle_request(request, &mut writer, shared),
            Err(e) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut writer,
                    &Response::Error {
                        error: ErrorResponse {
                            kind: ErrorKind::BadRequest,
                            message: format!("unparseable request: {e}"),
                        },
                    },
                )
            }
        };
        line.clear();
        if disconnect {
            break;
        }
    }
}

/// Writes one response; returns `true` when the connection should close
/// (write failure — the peer is gone).
fn respond(writer: &mut TcpStream, response: &Response) -> bool {
    write_message(writer, response).is_err()
}

/// Handles one parsed request; returns `true` when the connection should
/// close afterwards.
fn handle_request(request: Request, writer: &mut TcpStream, shared: &Shared) -> bool {
    match request {
        Request::Ping => respond(writer, &Response::Pong { version: PROTOCOL_VERSION }),
        Request::ListModels => {
            respond(writer, &Response::Models { models: ModelKind::all().to_vec() })
        }
        Request::CacheStats => respond(writer, &Response::Stats { stats: shared.stats() }),
        Request::ShardStatus => {
            respond(writer, &Response::ShardStatuses { shards: shared.shard_statuses() })
        }
        Request::Shutdown => {
            let _ = respond(writer, &Response::ShuttingDown);
            shared.request_shutdown();
            true
        }
        Request::RunModel { model, sparsity, width, arch, fidelity, deadline_ms } => {
            let deadline = Deadline::new(deadline_ms);
            if deadline.expired() {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                return respond(writer, &Deadline::error("RunModel"));
            }
            let width = width.unwrap_or(shared.runner.session().config().operand_width);
            let sparsity = match sparsity {
                Some(one) => vec![one],
                None => SparsityConfig::all().to_vec(),
            };
            match shared.runner.run_point(model, width, arch, &sparsity, fidelity) {
                // A result the client gave up on is withheld: the deadline
                // is a promise about when the answer stops being useful.
                Ok(_) if deadline.expired() => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    respond(writer, &Deadline::error("RunModel"))
                }
                Ok(entry) => respond(writer, &Response::RunResult { entry }),
                Err(e) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    respond(
                        writer,
                        &Response::Error {
                            error: ErrorResponse {
                                kind: ErrorKind::Pipeline,
                                message: e.to_string(),
                            },
                        },
                    )
                }
            }
        }
        Request::Sweep { spec, fidelity, deadline_ms } => {
            handle_sweep(&spec, fidelity, Deadline::new(deadline_ms), writer, shared)
        }
        Request::Explore { spec, deadline_ms, shard } => {
            handle_explore(&spec, Deadline::new(deadline_ms), shard.as_ref(), writer, shared)
        }
    }
}

/// Streams one design-space exploration: `ExploreStarted`, one
/// `ExplorePoint` per grid point as it completes (canonical spec order,
/// warm-cache artifacts reused across geometries), then `ExploreFinished`.
/// An oversized or infeasible grid is answered with a structured pipeline
/// error before any point executes; a failing point or an expired deadline
/// ends the stream (but not the connection) the same way. A shard-tagged
/// request additionally reports its progress into the daemon's
/// `ShardStatus` registry.
fn handle_explore(
    spec: &db_pim::DseSpec,
    deadline: Deadline,
    shard: Option<&ShardAnnotation>,
    writer: &mut TcpStream,
    shared: &Shared,
) -> bool {
    let shard_fail = |state: ShardState| {
        if let Some(tag) = shard {
            shared.shard_touch(tag, 0, state);
        }
    };
    if deadline.expired() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        shard_fail(ShardState::Failed);
        return respond(writer, &Deadline::error("Explore"));
    }
    let session_width = shared.runner.session().config().operand_width;
    let points = match spec.points(session_width) {
        Ok(points) => points,
        Err(e) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            shard_fail(ShardState::Failed);
            return respond(
                writer,
                &Response::Error {
                    error: ErrorResponse { kind: ErrorKind::Pipeline, message: e.to_string() },
                },
            );
        }
    };
    if let Some(tag) = shard {
        shared.shard_touch(tag, 0, ShardState::Running);
    }
    let sparsity = spec.unique_sparsity();
    let total_points = points.len();
    if respond(writer, &Response::ExploreStarted { total_points }) {
        return true;
    }

    let start = Instant::now();
    for (index, point) in points.into_iter().enumerate() {
        if deadline.expired() {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            shard_fail(ShardState::Failed);
            return respond(writer, &Deadline::error("Explore"));
        }
        let computed = shared.runner.run_point(
            point.kind,
            point.width,
            Some(point.arch),
            &sparsity,
            spec.fidelity,
        );
        match computed {
            // A point the client gave up on mid-compute is withheld, same
            // policy as RunModel: the deadline promises when answers stop
            // being useful, and the fleet has already requeued the point
            // elsewhere by now.
            Ok(_) if deadline.expired() => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                shard_fail(ShardState::Failed);
                return respond(writer, &Deadline::error("Explore"));
            }
            Ok(entry) => {
                let entry = db_pim::DseEntry::from_sweep(entry);
                if respond(writer, &Response::ExplorePoint { index, entry }) {
                    return true;
                }
                if let Some(tag) = shard {
                    shared.shard_touch(tag, 1, ShardState::Running);
                }
            }
            Err(e) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                shard_fail(ShardState::Failed);
                return respond(
                    writer,
                    &Response::Error {
                        error: ErrorResponse {
                            kind: ErrorKind::Pipeline,
                            message: format!("exploration point {index} failed: {e}"),
                        },
                    },
                );
            }
        }
    }

    respond(writer, &Response::ExploreFinished { total_points, wall_time: start.elapsed() })
}

/// Streams one sweep: `SweepStarted`, one `SweepPoint` per entry as it
/// completes, then `SweepFinished`. A failing point is answered with a
/// pipeline error and ends the stream (but not the connection); an expired
/// deadline ends it with a `DeadlineExceeded` error the same way.
fn handle_sweep(
    spec: &db_pim::SweepSpec,
    fidelity: bool,
    deadline: Deadline,
    writer: &mut TcpStream,
    shared: &Shared,
) -> bool {
    if deadline.expired() {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        return respond(writer, &Deadline::error("Sweep"));
    }
    let session_config = *shared.runner.session().config();
    let models = spec.unique_models();
    let sparsity = spec.unique_sparsity();
    let archs = spec.effective_archs(session_config.arch);
    let widths = spec.effective_widths(session_config.operand_width);

    let entries = models.len() * widths.len() * archs.len();
    if respond(writer, &Response::SweepStarted { entries }) {
        return true;
    }

    let start = Instant::now();
    let mut index = 0usize;
    // Deterministic (model, width, arch) order — identical to the entry
    // order `BatchRunner::run_with_fidelity` assembles.
    for &model in &models {
        for &width in &widths {
            for &arch in &archs {
                if deadline.expired() {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    return respond(writer, &Deadline::error("Sweep"));
                }
                match shared.runner.run_point(model, width, Some(arch), &sparsity, fidelity) {
                    // Same withhold policy as RunModel for a point that
                    // overran the deadline while computing.
                    Ok(_) if deadline.expired() => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        return respond(writer, &Deadline::error("Sweep"));
                    }
                    Ok(entry) => {
                        if respond(writer, &Response::SweepPoint { index, entry }) {
                            return true;
                        }
                    }
                    Err(e) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        return respond(
                            writer,
                            &Response::Error {
                                error: ErrorResponse {
                                    kind: ErrorKind::Pipeline,
                                    message: format!("sweep point {index} failed: {e}"),
                                },
                            },
                        );
                    }
                }
                index += 1;
            }
        }
    }

    respond(
        writer,
        &Response::SweepFinished {
            prepared_models: models.len() * widths.len(),
            simulated_runs: entries * sparsity.len(),
            wall_time: start.elapsed(),
        },
    )
}
