//! Silicon area model (Table 3 die area and the Table 4 breakdown).
//!
//! The paper reports a 1.15 mm² die in 28 nm with a detailed breakdown of the
//! logic DB-PIM adds on top of the dense digital-PIM baseline. This module
//! reproduces that breakdown from per-unit area constants (mm² per KB of
//! SRAM buffer, per macro, per post-processing unit, ...) calibrated against
//! the published numbers, so that changing the architecture configuration
//! (more macros, larger buffers, more parallel filters) changes the area the
//! way real layout would.

use dbpim_arch::ArchConfig;
use serde::{Deserialize, Serialize};

/// Per-unit area constants in mm² (28 nm calibration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// One 16 Kb PIM macro array including its local drivers.
    pub macro_mm2: f64,
    /// One KB of on-chip SRAM buffer (feature / weight / meta / instruction).
    pub buffer_mm2_per_kb: f64,
    /// One KB of register file (metadata RFs, output RF).
    pub rf_mm2_per_kb: f64,
    /// One post-processing unit (CSD adder tree + shift-add + accumulator).
    pub ppu_mm2: f64,
    /// Fixed digital logic: top controller, SIMD core, instruction decode.
    pub control_simd_mm2: f64,
    /// Extra DFFs and routing per macro needed to route the `Q̄` outputs and
    /// metadata into the adder trees.
    pub dff_routing_mm2_per_macro: f64,
    /// Input-sparsity support (zero-detection + leading-one detection) per
    /// macro.
    pub input_sparsity_mm2_per_macro: f64,
}

impl AreaModel {
    /// The 28 nm calibration used throughout the evaluation.
    ///
    /// With the paper's geometry this model reproduces Table 4:
    /// baseline ≈ 1.008 mm², meta RFs ≈ 0.078 mm², extra PPUs ≈ 0.063 mm²,
    /// DFFs/routing ≈ 0.0055 mm², input-sparsity support ≈ 0.00007 mm².
    #[must_use]
    pub fn calibrated_28nm() -> Self {
        Self {
            macro_mm2: 0.0430,
            buffer_mm2_per_kb: 0.00250,
            rf_mm2_per_kb: 0.00322,
            ppu_mm2: 0.0011177,
            control_simd_mm2: 0.1561,
            dff_routing_mm2_per_macro: 0.001375,
            input_sparsity_mm2_per_macro: 0.0000175,
        }
    }

    /// Area of the dense digital-PIM baseline (macros + buffers + control +
    /// the two post-processing units per macro the baseline already has).
    #[must_use]
    pub fn baseline_mm2(&self, config: &ArchConfig) -> f64 {
        let buffers_kb = config.sram_bytes() as f64 / 1024.0;
        let baseline_ppus = config.macros * config.dense_filters_per_macro;
        self.macro_mm2 * config.macros as f64
            + self.buffer_mm2_per_kb * buffers_kb
            + self.control_simd_mm2
            + self.ppu_mm2 * baseline_ppus as f64
    }

    /// Area of the metadata register files.
    #[must_use]
    pub fn meta_rf_mm2(&self, config: &ArchConfig) -> f64 {
        let kb = (config.macros * config.meta_rf_bytes) as f64 / 1024.0;
        self.rf_mm2_per_kb * kb
    }

    /// Area of the post-processing units DB-PIM adds beyond the baseline's
    /// two per macro (one per concurrently processed filter).
    #[must_use]
    pub fn extra_ppu_mm2(&self, config: &ArchConfig) -> f64 {
        let per_macro = config.dbmus_per_compartment.saturating_sub(config.dense_filters_per_macro);
        self.ppu_mm2 * (config.macros * per_macro) as f64
    }

    /// Area of the extra DFFs and routing resources inside the macros.
    #[must_use]
    pub fn dff_routing_mm2(&self, config: &ArchConfig) -> f64 {
        self.dff_routing_mm2_per_macro * config.macros as f64
    }

    /// Area of the input-sparsity support logic.
    #[must_use]
    pub fn input_sparsity_mm2(&self, config: &ArchConfig) -> f64 {
        self.input_sparsity_mm2_per_macro * config.macros as f64
    }

    /// Total DB-PIM die area.
    #[must_use]
    pub fn total_mm2(&self, config: &ArchConfig) -> f64 {
        self.baseline_mm2(config)
            + self.meta_rf_mm2(config)
            + self.extra_ppu_mm2(config)
            + self.dff_routing_mm2(config)
            + self.input_sparsity_mm2(config)
    }

    /// The Table 4 breakdown: component name, area in mm² and share of the
    /// total.
    #[must_use]
    pub fn breakdown(&self, config: &ArchConfig) -> Vec<AreaComponent> {
        let total = self.total_mm2(config);
        let rows = [
            ("PIM Baseline", self.baseline_mm2(config)),
            ("Meta-RFs", self.meta_rf_mm2(config)),
            ("Extra Post-processing Units", self.extra_ppu_mm2(config)),
            ("DFFs and Routing Resources", self.dff_routing_mm2(config)),
            ("Input Sparsity Support", self.input_sparsity_mm2(config)),
        ];
        rows.iter()
            .map(|&(name, mm2)| AreaComponent { name: name.to_string(), mm2, share: mm2 / total })
            .collect()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::calibrated_28nm()
    }
}

/// One row of the area breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaComponent {
    /// Component name (matches the Table 4 row labels).
    pub name: String,
    /// Area in mm².
    pub mm2: f64,
    /// Fraction of the total die area.
    pub share: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_reproduces_table_4_magnitudes() {
        let model = AreaModel::calibrated_28nm();
        let config = ArchConfig::paper();
        let baseline = model.baseline_mm2(&config);
        let total = model.total_mm2(&config);
        assert!((baseline - 1.008).abs() < 0.02, "baseline {baseline}");
        assert!((total - 1.155).abs() < 0.03, "total {total}");
        assert!((model.meta_rf_mm2(&config) - 0.0783).abs() < 0.005);
        assert!((model.extra_ppu_mm2(&config) - 0.0626).abs() < 0.005);
        assert!((model.dff_routing_mm2(&config) - 0.0055).abs() < 0.001);
        assert!(model.input_sparsity_mm2(&config) < 0.001);
    }

    #[test]
    fn breakdown_shares_sum_to_one() {
        let model = AreaModel::default();
        let config = ArchConfig::paper();
        let breakdown = model.breakdown(&config);
        assert_eq!(breakdown.len(), 5);
        let share_sum: f64 = breakdown.iter().map(|c| c.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        // The baseline dominates (~87 %), the input-sparsity support is ~0 %.
        assert!(breakdown[0].share > 0.82 && breakdown[0].share < 0.92);
        assert!(breakdown[4].share < 0.001);
    }

    #[test]
    fn area_scales_with_macro_count() {
        let model = AreaModel::default();
        let small = ArchConfig::paper();
        let mut big = ArchConfig::paper();
        big.macros = 8;
        assert!(model.total_mm2(&big) > model.total_mm2(&small));
        assert!(model.meta_rf_mm2(&big) > model.meta_rf_mm2(&small));
    }
}
