//! Simulator sparsity configurations.
//!
//! Fig. 7 of the paper evaluates four configurations against the same dense
//! digital-PIM baseline hardware:
//!
//! * **base** — the dense baseline itself,
//! * **input sparsity** — dense weight mapping plus IPU zero-column skipping,
//! * **weight sparsity** — the DB-PIM weight mapping without input skipping,
//! * **hybrid sparsity** — both (the full DB-PIM design).

use dbpim_arch::ArchConfig;
use dbpim_compiler::MappingMode;
use serde::{Deserialize, Serialize};

/// One of the four sparsity configurations of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SparsityConfig {
    /// Dense digital-PIM baseline: no sparsity support at all.
    DenseBaseline,
    /// Dense weight mapping, IPU input zero-column skipping enabled.
    InputSparsity,
    /// DB-PIM weight mapping (FTA + dyadic blocks), no input skipping.
    WeightSparsity,
    /// Full DB-PIM: weight and input sparsity exploited together.
    HybridSparsity,
}

/// Accepted (case/separator-folded) parse names per configuration — the
/// single table [`SparsityConfig::from_str`] matches against and the
/// [`SimError::UnknownSparsity`](crate::SimError::UnknownSparsity) display
/// derives its "expected one of" list from, so the two can never drift
/// apart. The first name of each row is the canonical short name.
pub(crate) const SPARSITY_PARSE_TABLE: [(&[&str], SparsityConfig); 4] = [
    (&["base", "baseline", "dense", "densebaseline"], SparsityConfig::DenseBaseline),
    (&["input", "inputsparsity"], SparsityConfig::InputSparsity),
    (&["weight", "weightsparsity"], SparsityConfig::WeightSparsity),
    (&["hybrid", "hybridsparsity"], SparsityConfig::HybridSparsity),
];

impl SparsityConfig {
    /// All four configurations in the order Fig. 7 reports them.
    #[must_use]
    pub fn all() -> [SparsityConfig; 4] {
        [
            SparsityConfig::DenseBaseline,
            SparsityConfig::InputSparsity,
            SparsityConfig::WeightSparsity,
            SparsityConfig::HybridSparsity,
        ]
    }

    /// The canonical short parse name of every configuration (`base`,
    /// `input`, `weight`, `hybrid`), in Fig. 7 order.
    #[must_use]
    pub fn canonical_names() -> [&'static str; 4] {
        [
            SPARSITY_PARSE_TABLE[0].0[0],
            SPARSITY_PARSE_TABLE[1].0[0],
            SPARSITY_PARSE_TABLE[2].0[0],
            SPARSITY_PARSE_TABLE[3].0[0],
        ]
    }

    /// Label used in figures and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SparsityConfig::DenseBaseline => "base",
            SparsityConfig::InputSparsity => "input sparsity",
            SparsityConfig::WeightSparsity => "weight sparsity",
            SparsityConfig::HybridSparsity => "hybrid sparsity",
        }
    }

    /// Whether the configuration uses the DB-PIM weight mapping.
    #[must_use]
    pub fn weight_sparsity(&self) -> bool {
        matches!(self, SparsityConfig::WeightSparsity | SparsityConfig::HybridSparsity)
    }

    /// Whether the IPU skips all-zero input bit columns.
    #[must_use]
    pub fn input_sparsity(&self) -> bool {
        matches!(self, SparsityConfig::InputSparsity | SparsityConfig::HybridSparsity)
    }

    /// The mapping mode a program must be compiled with for this
    /// configuration.
    #[must_use]
    pub fn mapping_mode(&self) -> MappingMode {
        if self.weight_sparsity() {
            MappingMode::DbPim
        } else {
            MappingMode::Dense
        }
    }
}

impl std::fmt::Display for SparsityConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for SparsityConfig {
    type Err = crate::SimError;

    /// Parses a configuration name, case-insensitively and ignoring
    /// ` `/`-`/`_` separators: `"base"` / `"dense"` / `"dense-baseline"`,
    /// `"input"` / `"input sparsity"`, `"weight"` / `"weight-sparsity"` and
    /// `"hybrid"` / `"hybrid_sparsity"` all resolve.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let folded: String = s
            .trim()
            .chars()
            .filter(|c| !matches!(c, ' ' | '-' | '_'))
            .flat_map(char::to_lowercase)
            .collect();
        SPARSITY_PARSE_TABLE
            .iter()
            .find(|(names, _)| names.contains(&folded.as_str()))
            .map(|&(_, config)| config)
            .ok_or_else(|| crate::SimError::UnknownSparsity { name: s.to_string() })
    }
}

/// The full simulator configuration: architecture geometry plus sparsity
/// setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Architecture geometry and clocking.
    pub arch: ArchConfig,
    /// Sparsity configuration.
    pub sparsity: SparsityConfig,
    /// Number of SIMD lanes of the element-wise core.
    pub simd_lanes: usize,
    /// Bytes the feature buffer delivers per cycle.
    pub feature_bytes_per_cycle: usize,
    /// Bytes the weight/meta path delivers per cycle while loading tiles.
    pub load_bytes_per_cycle: usize,
}

impl SimConfig {
    /// Creates a configuration with the paper's geometry.
    #[must_use]
    pub fn new(sparsity: SparsityConfig) -> Self {
        Self {
            arch: ArchConfig::paper(),
            sparsity,
            simd_lanes: 16,
            feature_bytes_per_cycle: 16,
            load_bytes_per_cycle: 32,
        }
    }

    /// The dense-baseline configuration.
    #[must_use]
    pub fn dense_baseline() -> Self {
        Self::new(SparsityConfig::DenseBaseline)
    }

    /// The full DB-PIM (hybrid sparsity) configuration.
    #[must_use]
    pub fn hybrid() -> Self {
        Self::new(SparsityConfig::HybridSparsity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_configurations_with_expected_flags() {
        let all = SparsityConfig::all();
        assert_eq!(all.len(), 4);
        assert!(!SparsityConfig::DenseBaseline.weight_sparsity());
        assert!(!SparsityConfig::DenseBaseline.input_sparsity());
        assert!(SparsityConfig::InputSparsity.input_sparsity());
        assert!(!SparsityConfig::InputSparsity.weight_sparsity());
        assert!(SparsityConfig::WeightSparsity.weight_sparsity());
        assert!(!SparsityConfig::WeightSparsity.input_sparsity());
        assert!(SparsityConfig::HybridSparsity.weight_sparsity());
        assert!(SparsityConfig::HybridSparsity.input_sparsity());
    }

    #[test]
    fn mapping_modes_follow_weight_sparsity() {
        assert_eq!(SparsityConfig::DenseBaseline.mapping_mode(), MappingMode::Dense);
        assert_eq!(SparsityConfig::InputSparsity.mapping_mode(), MappingMode::Dense);
        assert_eq!(SparsityConfig::WeightSparsity.mapping_mode(), MappingMode::DbPim);
        assert_eq!(SparsityConfig::HybridSparsity.mapping_mode(), MappingMode::DbPim);
        assert_eq!(SparsityConfig::HybridSparsity.to_string(), "hybrid sparsity");
    }

    #[test]
    fn sparsity_parses_labels_aliases_and_rejects_garbage() {
        use std::str::FromStr;
        for (raw, expected) in [
            ("base", SparsityConfig::DenseBaseline),
            ("dense", SparsityConfig::DenseBaseline),
            ("dense-baseline", SparsityConfig::DenseBaseline),
            ("input", SparsityConfig::InputSparsity),
            ("input sparsity", SparsityConfig::InputSparsity),
            ("weight", SparsityConfig::WeightSparsity),
            ("Weight_Sparsity", SparsityConfig::WeightSparsity),
            ("hybrid", SparsityConfig::HybridSparsity),
            ("HybridSparsity", SparsityConfig::HybridSparsity),
        ] {
            assert_eq!(SparsityConfig::from_str(raw).unwrap(), expected, "raw `{raw}`");
        }
        // Every figure label round-trips.
        for config in SparsityConfig::all() {
            assert_eq!(SparsityConfig::from_str(config.label()).unwrap(), config);
        }
        for raw in ["", "sparse", "all", "dense+input"] {
            let err = SparsityConfig::from_str(raw).unwrap_err();
            assert!(err.to_string().contains("unknown sparsity"), "raw `{raw}`: {err}");
        }
    }

    #[test]
    fn config_presets_use_paper_geometry() {
        let dense = SimConfig::dense_baseline();
        assert_eq!(dense.sparsity, SparsityConfig::DenseBaseline);
        assert_eq!(dense.arch, ArchConfig::paper());
        let hybrid = SimConfig::hybrid();
        assert_eq!(hybrid.sparsity, SparsityConfig::HybridSparsity);
        assert_eq!(hybrid.simd_lanes, 16);
    }
}
