//! Design-space-exploration primitives: architecture axis grids and
//! Pareto-frontier extraction.
//!
//! The paper's headline claim is a *methodology*: DB-PIM's digit-serial CSD
//! macros win across geometries, not just at the Section 4.1 point. This
//! module provides the two hardware-side pieces a design-space exploration
//! needs:
//!
//! * [`ArchGrid`] — axis grids over the [`ArchConfig`] parameters (macro
//!   count, compartments, DBMU columns, rows, frequency, buffer sizes)
//!   crossed into concrete geometry points, with infeasible combinations
//!   rejected through structured [`GridError`]s rather than skipped
//!   silently.
//! * [`ParetoMetrics`] / [`pareto_frontier`] — the latency / energy / area /
//!   fidelity objective space and non-dominated-set extraction over it.

use std::fmt;

use dbpim_arch::{ArchConfig, ArchError};
use serde::{Deserialize, Serialize};

/// Hard cap on the number of geometry points one grid may enumerate.
///
/// A grid request travels over the serving protocol, so an accidental (or
/// hostile) cross product of long axes must be rejected up front instead of
/// tying a daemon worker up for hours.
pub const MAX_GRID_POINTS: usize = 4096;

/// A grid of architecture geometries: one value list per swept
/// [`ArchConfig`] axis, crossed into concrete points.
///
/// An empty axis means "keep the base configuration's value", so a grid
/// sweeping only `macros` and `rows_per_dbmu` stays two-dimensional. Axis
/// order in the cross product is fixed (macros outermost, then
/// compartments, DBMU columns, rows, frequency, feature / weight / meta
/// buffer bytes innermost), so the point order — and therefore every
/// downstream report — is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchGrid {
    /// The configuration supplying every unswept parameter.
    pub base: ArchConfig,
    /// PIM macro counts to sweep.
    pub macros: Vec<usize>,
    /// Compartments-per-macro values to sweep.
    pub compartments_per_macro: Vec<usize>,
    /// DBMU-columns-per-compartment values to sweep.
    pub dbmus_per_compartment: Vec<usize>,
    /// Rows-per-DBMU values to sweep.
    pub rows_per_dbmu: Vec<usize>,
    /// Clock frequencies (MHz) to sweep.
    pub frequency_mhz: Vec<f64>,
    /// Feature-buffer capacities (bytes) to sweep.
    pub feature_buffer_bytes: Vec<usize>,
    /// Weight-buffer capacities (bytes) to sweep.
    pub weight_buffer_bytes: Vec<usize>,
    /// Meta-buffer capacities (bytes) to sweep.
    pub meta_buffer_bytes: Vec<usize>,
}

impl ArchGrid {
    /// A grid with every axis unswept: it enumerates exactly `base`.
    #[must_use]
    pub fn around(base: ArchConfig) -> Self {
        Self {
            base,
            macros: Vec::new(),
            compartments_per_macro: Vec::new(),
            dbmus_per_compartment: Vec::new(),
            rows_per_dbmu: Vec::new(),
            frequency_mhz: Vec::new(),
            feature_buffer_bytes: Vec::new(),
            weight_buffer_bytes: Vec::new(),
            meta_buffer_bytes: Vec::new(),
        }
    }

    /// Sweeps the macro count.
    #[must_use]
    pub fn with_macros(mut self, macros: Vec<usize>) -> Self {
        self.macros = macros;
        self
    }

    /// Sweeps the compartments per macro.
    #[must_use]
    pub fn with_compartments(mut self, compartments: Vec<usize>) -> Self {
        self.compartments_per_macro = compartments;
        self
    }

    /// Sweeps the DBMU columns per compartment.
    #[must_use]
    pub fn with_dbmus(mut self, dbmus: Vec<usize>) -> Self {
        self.dbmus_per_compartment = dbmus;
        self
    }

    /// Sweeps the rows per DBMU.
    #[must_use]
    pub fn with_rows(mut self, rows: Vec<usize>) -> Self {
        self.rows_per_dbmu = rows;
        self
    }

    /// Sweeps the clock frequency (MHz).
    #[must_use]
    pub fn with_frequencies(mut self, frequency_mhz: Vec<f64>) -> Self {
        self.frequency_mhz = frequency_mhz;
        self
    }

    /// Sweeps the feature-buffer capacity (bytes).
    #[must_use]
    pub fn with_feature_buffers(mut self, bytes: Vec<usize>) -> Self {
        self.feature_buffer_bytes = bytes;
        self
    }

    /// Sweeps the weight-buffer capacity (bytes).
    #[must_use]
    pub fn with_weight_buffers(mut self, bytes: Vec<usize>) -> Self {
        self.weight_buffer_bytes = bytes;
        self
    }

    /// Sweeps the meta-buffer capacity (bytes).
    #[must_use]
    pub fn with_meta_buffers(mut self, bytes: Vec<usize>) -> Self {
        self.meta_buffer_bytes = bytes;
        self
    }

    /// Number of points the cross product contains (before feasibility
    /// checks); an empty axis contributes the base value, i.e. a factor of
    /// one.
    #[must_use]
    pub fn point_count(&self) -> usize {
        let f = |len: usize| len.max(1);
        f(self.macros.len())
            * f(self.compartments_per_macro.len())
            * f(self.dbmus_per_compartment.len())
            * f(self.rows_per_dbmu.len())
            * f(self.frequency_mhz.len())
            * f(self.feature_buffer_bytes.len())
            * f(self.weight_buffer_bytes.len())
            * f(self.meta_buffer_bytes.len())
    }

    /// The raw cross product in deterministic axis order, without
    /// feasibility checks or the size cap.
    fn raw_points(&self) -> Vec<ArchConfig> {
        let or_base = |axis: &[usize], base: usize| {
            if axis.is_empty() {
                vec![base]
            } else {
                axis.to_vec()
            }
        };
        let macros = or_base(&self.macros, self.base.macros);
        let compartments = or_base(&self.compartments_per_macro, self.base.compartments_per_macro);
        let dbmus = or_base(&self.dbmus_per_compartment, self.base.dbmus_per_compartment);
        let rows = or_base(&self.rows_per_dbmu, self.base.rows_per_dbmu);
        let frequencies = if self.frequency_mhz.is_empty() {
            vec![self.base.frequency_mhz]
        } else {
            self.frequency_mhz.clone()
        };
        let features = or_base(&self.feature_buffer_bytes, self.base.feature_buffer_bytes);
        let weights = or_base(&self.weight_buffer_bytes, self.base.weight_buffer_bytes);
        let metas = or_base(&self.meta_buffer_bytes, self.base.meta_buffer_bytes);

        let mut points = Vec::with_capacity(self.point_count());
        for &m in &macros {
            for &c in &compartments {
                for &d in &dbmus {
                    for &r in &rows {
                        for &f in &frequencies {
                            for &fb in &features {
                                for &wb in &weights {
                                    for &mb in &metas {
                                        let mut arch = self.base;
                                        arch.macros = m;
                                        arch.compartments_per_macro = c;
                                        arch.dbmus_per_compartment = d;
                                        arch.rows_per_dbmu = r;
                                        arch.frequency_mhz = f;
                                        arch.feature_buffer_bytes = fb;
                                        arch.weight_buffer_bytes = wb;
                                        arch.meta_buffer_bytes = mb;
                                        points.push(arch);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Enumerates every geometry point, strictly: the first infeasible
    /// combination fails the whole grid with a structured error naming the
    /// point and the violated constraint.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::TooLarge`] when the cross product exceeds
    /// [`MAX_GRID_POINTS`] and [`GridError::Infeasible`] for the first point
    /// [`ArchConfig::validate`] rejects.
    pub fn enumerate(&self) -> Result<Vec<ArchConfig>, GridError> {
        let points = self.checked_raw_points()?;
        for (index, arch) in points.iter().enumerate() {
            arch.validate().map_err(|source| GridError::Infeasible {
                index,
                arch: Box::new(*arch),
                source,
            })?;
        }
        Ok(points)
    }

    /// Enumerates the grid, partitioning into feasible points and rejected
    /// `(point, reason)` pairs instead of failing on the first infeasible
    /// combination — for exploratory sweeps that want to cover the feasible
    /// region of a partially-infeasible grid.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::TooLarge`] when the cross product exceeds
    /// [`MAX_GRID_POINTS`]; infeasibility is reported per point, never as an
    /// error.
    #[allow(clippy::type_complexity)]
    pub fn enumerate_partitioned(
        &self,
    ) -> Result<(Vec<ArchConfig>, Vec<(ArchConfig, ArchError)>), GridError> {
        let points = self.checked_raw_points()?;
        let mut feasible = Vec::with_capacity(points.len());
        let mut rejected = Vec::new();
        for arch in points {
            match arch.validate() {
                Ok(()) => feasible.push(arch),
                Err(source) => rejected.push((arch, source)),
            }
        }
        Ok((feasible, rejected))
    }

    fn checked_raw_points(&self) -> Result<Vec<ArchConfig>, GridError> {
        let points = self.point_count();
        if points > MAX_GRID_POINTS {
            return Err(GridError::TooLarge { points, max: MAX_GRID_POINTS });
        }
        Ok(self.raw_points())
    }
}

/// A deterministic relative-cost heuristic for simulating one geometry:
/// the total DBMU cell count (`macros × compartments × DBMU columns ×
/// rows`). The cycle-accurate engine walks every occupied cell of every
/// tile, so simulation time grows roughly linearly with this product —
/// which makes it the load-balancing weight the fleet orchestrator's
/// cost-weighted shard strategy uses to split a grid across workers.
///
/// The heuristic deliberately ignores frequency (it rescales reported
/// latency, not simulated work) and buffer sizes (they bound feasibility,
/// not per-tile work).
#[must_use]
pub fn geometry_cost(arch: &ArchConfig) -> u64 {
    (arch.macros as u64)
        .saturating_mul(arch.compartments_per_macro as u64)
        .saturating_mul(arch.dbmus_per_compartment as u64)
        .saturating_mul(arch.rows_per_dbmu as u64)
        .max(1)
}

/// A structured grid-enumeration failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// The cross product exceeds [`MAX_GRID_POINTS`].
    TooLarge {
        /// Points the grid would enumerate.
        points: usize,
        /// The enforced maximum.
        max: usize,
    },
    /// A point of the grid fails [`ArchConfig::validate`].
    Infeasible {
        /// Position of the point in the deterministic enumeration order.
        index: usize,
        /// The offending geometry.
        arch: Box<ArchConfig>,
        /// The violated constraint.
        source: ArchError,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::TooLarge { points, max } => {
                write!(f, "grid enumerates {points} geometry points, more than the maximum {max}")
            }
            GridError::Infeasible { index, arch, source } => {
                write!(
                    f,
                    "grid point {index} is infeasible ({} macros x {} compartments x {} dbmus x \
                     {} rows @ {} MHz): {source}",
                    arch.macros,
                    arch.compartments_per_macro,
                    arch.dbmus_per_compartment,
                    arch.rows_per_dbmu,
                    arch.frequency_mhz
                )
            }
        }
    }
}

impl std::error::Error for GridError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GridError::TooLarge { .. } => None,
            GridError::Infeasible { source, .. } => Some(source),
        }
    }
}

/// One design point's position in the DSE objective space. Every axis is
/// minimized.
///
/// `fidelity_loss` is `1 - top1_agreement`; points without a fidelity
/// evaluation (non-INT8 widths, fidelity-disabled runs) carry the
/// conservative maximum `1.0`, so they can never dominate an evaluated
/// point on the fidelity axis but remain comparable on the other three.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParetoMetrics {
    /// End-to-end latency in milliseconds.
    pub latency_ms: f64,
    /// Total energy in microjoules.
    pub energy_uj: f64,
    /// Die area in mm².
    pub area_mm2: f64,
    /// `1 - top1_agreement` (`1.0` when no fidelity was evaluated).
    pub fidelity_loss: f64,
}

impl ParetoMetrics {
    /// The objective values as an array, all minimized.
    #[must_use]
    pub fn objectives(&self) -> [f64; 4] {
        [self.latency_ms, self.energy_uj, self.area_mm2, self.fidelity_loss]
    }

    /// `true` when `self` is at least as good on every objective and
    /// strictly better on at least one.
    #[must_use]
    pub fn dominates(&self, other: &ParetoMetrics) -> bool {
        let a = self.objectives();
        let b = other.objectives();
        let mut strictly_better = false;
        for (x, y) in a.iter().zip(b.iter()) {
            if x > y {
                return false;
            }
            if x < y {
                strictly_better = true;
            }
        }
        strictly_better
    }
}

/// Indices of the non-dominated points, in input order.
///
/// Duplicate points (equal on every objective) do not dominate each other,
/// so all copies of a frontier point are kept — deterministic and
/// assertion-friendly.
#[must_use]
pub fn pareto_frontier(points: &[ParetoMetrics]) -> Vec<usize> {
    // Incremental skyline: carry the frontier found so far; a new point is
    // dropped if dominated, and evicts the frontier members it dominates.
    let mut frontier: Vec<usize> = Vec::new();
    for (index, point) in points.iter().enumerate() {
        if frontier.iter().any(|&f| points[f].dominates(point)) {
            continue;
        }
        frontier.retain(|&f| !point.dominates(&points[f]));
        frontier.push(index);
    }
    frontier.sort_unstable();
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unswept_grid_enumerates_exactly_the_base() {
        let grid = ArchGrid::around(ArchConfig::paper());
        assert_eq!(grid.point_count(), 1);
        assert_eq!(grid.enumerate().unwrap(), vec![ArchConfig::paper()]);
    }

    #[test]
    fn cross_product_is_deterministic_and_complete() {
        let grid = ArchGrid::around(ArchConfig::paper())
            .with_macros(vec![2, 4])
            .with_rows(vec![32, 64])
            .with_frequencies(vec![250.0, 500.0]);
        assert_eq!(grid.point_count(), 8);
        let points = grid.enumerate().unwrap();
        assert_eq!(points.len(), 8);
        // Macros outermost, frequency innermost of the swept axes.
        assert_eq!(
            (points[0].macros, points[0].rows_per_dbmu, points[0].frequency_mhz),
            (2, 32, 250.0)
        );
        assert_eq!(
            (points[1].macros, points[1].rows_per_dbmu, points[1].frequency_mhz),
            (2, 32, 500.0)
        );
        assert_eq!(
            (points[7].macros, points[7].rows_per_dbmu, points[7].frequency_mhz),
            (4, 64, 500.0)
        );
        // Unswept axes keep the base values.
        assert!(points
            .iter()
            .all(|p| p.meta_buffer_bytes == ArchConfig::paper().meta_buffer_bytes));
        // Enumeration is a pure function of the grid.
        assert_eq!(points, grid.enumerate().unwrap());
    }

    #[test]
    fn infeasible_points_are_structured_errors_not_skips() {
        let grid = ArchGrid::around(ArchConfig::paper()).with_macros(vec![4, 0]);
        let err = grid.enumerate().unwrap_err();
        match &err {
            GridError::Infeasible { index, arch, .. } => {
                assert_eq!(*index, 1);
                assert_eq!(arch.macros, 0);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
        assert!(err.to_string().contains("grid point 1"), "{err}");

        // The partitioned form keeps the feasible half.
        let (feasible, rejected) = grid.enumerate_partitioned().unwrap();
        assert_eq!(feasible.len(), 1);
        assert_eq!(feasible[0].macros, 4);
        assert_eq!(rejected.len(), 1);
        assert_eq!(rejected[0].0.macros, 0);
    }

    #[test]
    fn undersized_buffers_make_points_infeasible() {
        // 128 rows x 16 compartments needs a 2 KB weight buffer; 1 KB fails.
        let grid = ArchGrid::around(ArchConfig::paper())
            .with_rows(vec![64, 128])
            .with_weight_buffers(vec![1024]);
        let err = grid.enumerate().unwrap_err();
        assert!(matches!(err, GridError::Infeasible { index: 1, .. }), "{err:?}");
        let (feasible, rejected) = grid.enumerate_partitioned().unwrap();
        assert_eq!(feasible.len(), 1);
        assert_eq!(rejected.len(), 1);
        assert!(rejected[0].1.to_string().contains("weight buffer"), "{}", rejected[0].1);
    }

    #[test]
    fn oversize_grids_are_rejected_up_front() {
        let grid = ArchGrid::around(ArchConfig::paper())
            .with_macros((1..=20).collect())
            .with_rows((1..=20).map(|i| i * 8).collect())
            .with_frequencies((1..=20).map(|i| f64::from(i) * 50.0).collect());
        assert_eq!(grid.point_count(), 8000);
        let err = grid.enumerate().unwrap_err();
        assert!(matches!(err, GridError::TooLarge { points: 8000, max: MAX_GRID_POINTS }), "{err}");
        assert!(grid.enumerate_partitioned().is_err());
    }

    #[test]
    fn grid_round_trips_through_serde() {
        let grid = ArchGrid::around(ArchConfig::paper())
            .with_macros(vec![2, 8])
            .with_frequencies(vec![250.0]);
        let json = serde_json::to_string(&grid).unwrap();
        let back: ArchGrid = serde_json::from_str(&json).unwrap();
        assert_eq!(grid, back);
    }

    #[test]
    fn geometry_cost_scales_with_cell_count_and_ignores_frequency() {
        let base = ArchConfig::paper();
        let mut doubled = base;
        doubled.macros *= 2;
        assert_eq!(geometry_cost(&doubled), 2 * geometry_cost(&base));
        let mut faster = base;
        faster.frequency_mhz *= 4.0;
        assert_eq!(geometry_cost(&faster), geometry_cost(&base));
        let mut degenerate = base;
        degenerate.macros = 0;
        assert_eq!(geometry_cost(&degenerate), 1, "degenerate points cost at least one unit");
    }

    fn m(latency: f64, energy: f64, area: f64, loss: f64) -> ParetoMetrics {
        ParetoMetrics {
            latency_ms: latency,
            energy_uj: energy,
            area_mm2: area,
            fidelity_loss: loss,
        }
    }

    #[test]
    fn domination_requires_strict_improvement_somewhere() {
        let a = m(1.0, 1.0, 1.0, 0.0);
        assert!(!a.dominates(&a), "a point never dominates itself");
        assert!(m(0.5, 1.0, 1.0, 0.0).dominates(&a));
        assert!(!m(0.5, 2.0, 1.0, 0.0).dominates(&a), "trade-offs do not dominate");
        assert!(a.dominates(&m(2.0, 2.0, 2.0, 0.5)));
    }

    #[test]
    fn frontier_matches_brute_force_on_a_known_set() {
        let points = vec![
            m(1.0, 4.0, 1.0, 0.1), // frontier (fastest at its energy)
            m(2.0, 2.0, 1.0, 0.1), // frontier (trade-off)
            m(2.0, 2.0, 1.0, 0.1), // duplicate of a frontier point: kept
            m(3.0, 3.0, 1.0, 0.1), // dominated by the previous two
            m(4.0, 1.0, 1.0, 0.1), // frontier (cheapest energy)
            m(4.0, 1.5, 1.0, 0.0), // frontier (only point with zero loss)
        ];
        let frontier = pareto_frontier(&points);
        let brute: Vec<usize> = (0..points.len())
            .filter(|&i| !points.iter().any(|p| p.dominates(&points[i])))
            .collect();
        assert_eq!(frontier, brute);
        assert_eq!(frontier, vec![0, 1, 2, 4, 5]);
        assert!(pareto_frontier(&[]).is_empty());
    }
}
