//! Per-event energy cost model.
//!
//! The paper extracts macro power from a 28 nm post-layout design and the
//! digital periphery from synthesis. This reproduction replaces those
//! measurements with a parametric per-event model: every counted event
//! (cell compute, adder-tree reduction, PPU shift-add, buffer byte, SIMD
//! lane-op, leakage cycle) is charged a calibrated energy in picojoules. The
//! constants are chosen so that the dense baseline and the DB-PIM
//! configuration land in the power / energy-efficiency ranges Table 3
//! reports; every *relative* result (energy saving, breakdown shares) is
//! computed, not assumed.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Per-event energies in picojoules (28 nm, 0.8 V class calibration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One 6T cell read combined with its LPU AND evaluation.
    pub cell_compute_pj: f64,
    /// One 6T cell write (word-line row write is charged per cell).
    pub cell_write_pj: f64,
    /// One CSD adder-tree reduction (per filter, per cycle).
    pub adder_tree_pj: f64,
    /// One post-processing shift-and-add (per filter, per cycle).
    pub ppu_pj: f64,
    /// One byte read from or written to the feature buffer.
    pub feature_byte_pj: f64,
    /// One byte read from the weight buffer.
    pub weight_byte_pj: f64,
    /// One byte moved through the meta buffer and metadata register files.
    pub meta_byte_pj: f64,
    /// One SIMD lane operation (activation, pooling, requantization, ...).
    pub simd_op_pj: f64,
    /// One cycle of IPU zero-detection for a 16-feature group.
    pub ipu_group_pj: f64,
    /// Static (leakage + clock-tree) energy per cycle for the whole design.
    pub static_per_cycle_pj: f64,
}

impl CostModel {
    /// The calibrated 28 nm cost model used throughout the evaluation.
    #[must_use]
    pub fn calibrated_28nm() -> Self {
        Self {
            cell_compute_pj: 0.0030,
            cell_write_pj: 0.0060,
            adder_tree_pj: 0.0220,
            ppu_pj: 0.0180,
            feature_byte_pj: 0.0500,
            weight_byte_pj: 0.0500,
            meta_byte_pj: 0.0600,
            simd_op_pj: 0.0400,
            ipu_group_pj: 0.0080,
            static_per_cycle_pj: 4.0,
        }
    }

    /// Validates that every parameter is finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCost`] naming the first offending field.
    pub fn validate(&self) -> Result<(), SimError> {
        let fields = [
            ("cell_compute_pj", self.cell_compute_pj),
            ("cell_write_pj", self.cell_write_pj),
            ("adder_tree_pj", self.adder_tree_pj),
            ("ppu_pj", self.ppu_pj),
            ("feature_byte_pj", self.feature_byte_pj),
            ("weight_byte_pj", self.weight_byte_pj),
            ("meta_byte_pj", self.meta_byte_pj),
            ("simd_op_pj", self.simd_op_pj),
            ("ipu_group_pj", self.ipu_group_pj),
            ("static_per_cycle_pj", self.static_per_cycle_pj),
        ];
        for (parameter, value) in fields {
            if !value.is_finite() || value < 0.0 {
                return Err(SimError::InvalidCost { parameter, value });
            }
        }
        Ok(())
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::calibrated_28nm()
    }
}

/// Energy of one simulated run, split by component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Dynamic energy of the macro arrays (cells + adder trees + PPUs).
    pub macro_dynamic_pj: f64,
    /// Weight-tile loading (cell writes + weight-buffer traffic).
    pub weight_load_pj: f64,
    /// Metadata traffic (meta buffer + metadata RFs).
    pub metadata_pj: f64,
    /// Feature-buffer traffic (input streaming + IPU).
    pub feature_traffic_pj: f64,
    /// Output write-back traffic.
    pub output_traffic_pj: f64,
    /// SIMD-core element-wise work.
    pub simd_pj: f64,
    /// Static (leakage + clock) energy.
    pub static_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.macro_dynamic_pj
            + self.weight_load_pj
            + self.metadata_pj
            + self.feature_traffic_pj
            + self.output_traffic_pj
            + self.simd_pj
            + self.static_pj
    }

    /// Total energy in microjoules.
    #[must_use]
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// Element-wise accumulation of another breakdown.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.macro_dynamic_pj += other.macro_dynamic_pj;
        self.weight_load_pj += other.weight_load_pj;
        self.metadata_pj += other.metadata_pj;
        self.feature_traffic_pj += other.feature_traffic_pj;
        self.output_traffic_pj += other.output_traffic_pj;
        self.simd_pj += other.simd_pj;
        self.static_pj += other.static_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_model_is_valid() {
        assert!(CostModel::calibrated_28nm().validate().is_ok());
        assert_eq!(CostModel::default(), CostModel::calibrated_28nm());
    }

    #[test]
    fn invalid_parameters_are_named() {
        let mut model = CostModel::calibrated_28nm();
        model.ppu_pj = -1.0;
        let err = model.validate().unwrap_err();
        assert!(matches!(err, SimError::InvalidCost { parameter: "ppu_pj", .. }));
        let mut model = CostModel::calibrated_28nm();
        model.static_per_cycle_pj = f64::NAN;
        assert!(model.validate().is_err());
    }

    #[test]
    fn breakdown_totals_and_accumulation() {
        let a = EnergyBreakdown {
            macro_dynamic_pj: 1.0,
            weight_load_pj: 2.0,
            metadata_pj: 3.0,
            feature_traffic_pj: 4.0,
            output_traffic_pj: 5.0,
            simd_pj: 6.0,
            static_pj: 7.0,
        };
        assert!((a.total_pj() - 28.0).abs() < 1e-12);
        assert!((a.total_uj() - 28.0e-6).abs() < 1e-15);
        let mut b = EnergyBreakdown::default();
        b.accumulate(&a);
        b.accumulate(&a);
        assert!((b.total_pj() - 56.0).abs() < 1e-12);
    }
}
