//! The cycle-accurate performance and energy engine.
//!
//! The engine executes a compiled [`ModelProgram`] instruction by
//! instruction. Weight-tile loads and macro computations are charged to the
//! macro they target (macros work in parallel, so a layer's array time is the
//! maximum busy time across macros); input streaming runs on the feature
//! buffer port and overlaps with the array; partial-sum accumulation, output
//! write-back and SIMD work are serial post-processing. Every event is also
//! charged its energy from the [`CostModel`].

use dbpim_arch::OPERAND_BITS;
use dbpim_compiler::{Instruction, LayerProgram, ModelProgram, SimdOpKind};
use serde::{Deserialize, Serialize};

use crate::config::SimConfig;
use crate::energy::{CostModel, EnergyBreakdown};
use crate::error::SimError;
use crate::report::{LayerReport, RunReport};

/// The DB-PIM performance simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Simulator {
    config: SimConfig,
    cost: CostModel,
}

/// Per-macro busy-time accumulators, allocated once per simulation and
/// cleared per layer instead of reallocated.
#[derive(Debug)]
struct MacroBusy {
    busy: Vec<f64>,
    compute_busy: Vec<f64>,
}

impl MacroBusy {
    fn new(macros: usize) -> Self {
        Self { busy: vec![0.0; macros], compute_busy: vec![0.0; macros] }
    }

    fn clear(&mut self) {
        self.busy.fill(0.0);
        self.compute_busy.fill(0.0);
    }
}

impl Simulator {
    /// Creates a simulator with the calibrated 28 nm cost model.
    ///
    /// # Errors
    ///
    /// Returns a validation error for a degenerate architecture
    /// configuration.
    pub fn new(config: SimConfig) -> Result<Self, SimError> {
        Self::with_cost_model(config, CostModel::calibrated_28nm())
    }

    /// Creates a simulator with an explicit cost model.
    ///
    /// # Errors
    ///
    /// Returns a validation error for a degenerate architecture
    /// configuration or an invalid cost model.
    pub fn with_cost_model(config: SimConfig, cost: CostModel) -> Result<Self, SimError> {
        config.arch.validate()?;
        cost.validate()?;
        Ok(Self { config, cost })
    }

    /// The simulator's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The simulator's cost model.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Simulates a compiled program and returns the run report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MappingMismatch`] when the program's mapping mode
    /// does not match the configuration's sparsity setting.
    pub fn simulate(&self, program: &ModelProgram) -> Result<RunReport, SimError> {
        let expected = self.config.sparsity.mapping_mode();
        if program.mode != expected {
            return Err(SimError::MappingMismatch {
                program: program.mode.name(),
                expected: expected.name(),
            });
        }
        let _span = dbpim_trace::span!(
            "sim.model",
            model = program.model_name,
            layers = program.layers.len(),
        );
        // Per-macro busy scratch reused across layers instead of allocating
        // two vectors per layer.
        let mut busy = MacroBusy::new(self.config.arch.macros);
        let layers = program
            .layers
            .iter()
            .map(|layer| self.simulate_layer(layer, program.operand_bits, &mut busy))
            .collect();
        Ok(RunReport {
            model_name: program.model_name.clone(),
            sparsity: self.config.sparsity,
            frequency_mhz: self.config.arch.frequency_mhz,
            layers,
        })
    }

    fn simulate_layer(
        &self,
        layer: &LayerProgram,
        operand_bits: u32,
        macro_busy: &mut MacroBusy,
    ) -> LayerReport {
        let _span = dbpim_trace::span!("sim.layer", layer = layer.name, node = layer.node_id);
        let arch = &self.config.arch;
        let compartments = arch.compartments_per_macro as f64;
        let input_skip = if self.config.sparsity.input_sparsity() {
            layer.workload.as_ref().map_or(0.0, |w| w.input_skip_ratio)
        } else {
            0.0
        };
        // Input features are always streamed bit-serially at INT8; only the
        // weight width (`operand_bits`) varies per program.
        let bit_columns = (OPERAND_BITS as f64 * (1.0 - input_skip)).max(0.0);

        macro_busy.clear();
        let MacroBusy { busy, compute_busy } = macro_busy;
        let mut io_cycles = 0.0f64;
        let mut serial_cycles = 0.0f64;
        let mut energy = EnergyBreakdown::default();

        for inst in &layer.instructions {
            match *inst {
                Instruction::LoadWeights {
                    macro_id,
                    filters,
                    weights_per_filter,
                    cells_per_weight,
                    metadata_bytes,
                } => {
                    let rows = f64::from(weights_per_filter) / compartments;
                    let cells = f64::from(filters)
                        * f64::from(weights_per_filter)
                        * f64::from(cells_per_weight);
                    let payload_bytes = cells / 8.0 + f64::from(metadata_bytes);
                    let cycles =
                        rows.ceil().max(payload_bytes / self.config.load_bytes_per_cycle as f64);
                    let slot = usize::from(macro_id).min(arch.macros - 1);
                    busy[slot] += cycles;
                    energy.weight_load_pj +=
                        cells * self.cost.cell_write_pj + (cells / 8.0) * self.cost.weight_byte_pj;
                    energy.metadata_pj += f64::from(metadata_bytes) * self.cost.meta_byte_pj;
                }
                Instruction::LoadInputs { features } => {
                    io_cycles += f64::from(features) / self.config.feature_bytes_per_cycle as f64;
                    let groups = f64::from(features) / compartments;
                    energy.feature_traffic_pj += f64::from(features) * self.cost.feature_byte_pj
                        + groups * self.cost.ipu_group_pj;
                }
                Instruction::Compute {
                    macro_id,
                    filters,
                    weights_per_filter,
                    output_positions,
                    threshold,
                } => {
                    // Sampled 1-in-N (the collector's kernel knob): a layer
                    // dispatches one Compute per tile, and recording every
                    // one would flood the ring buffer. `threshold` carries
                    // the popcount-derived active-cell count of sparse
                    // tiles, so the sampled span reports real op counts.
                    let _dispatch = dbpim_trace::kernel_span_with("sim.dispatch", || {
                        let macs = u64::from(filters)
                            * u64::from(weights_per_filter)
                            * u64::from(output_positions);
                        vec![
                            ("macro", macro_id.to_string()),
                            ("macs", macs.to_string()),
                            (
                                "cells_per_weight",
                                threshold.map_or(operand_bits.to_string(), |t| t.to_string()),
                            ),
                        ]
                    });
                    let rows = (f64::from(weights_per_filter) / compartments).ceil();
                    let cycles = f64::from(output_positions) * rows * bit_columns;
                    let slot = usize::from(macro_id).min(arch.macros - 1);
                    busy[slot] += cycles;
                    compute_busy[slot] += cycles;
                    let cells_per_weight = threshold.map_or(f64::from(operand_bits), f64::from);
                    let active_cells = compartments * f64::from(filters) * cells_per_weight;
                    energy.macro_dynamic_pj += cycles
                        * (active_cells * self.cost.cell_compute_pj
                            + f64::from(filters) * (self.cost.adder_tree_pj + self.cost.ppu_pj));
                }
                Instruction::Accumulate { elements } => {
                    serial_cycles += f64::from(elements) / self.config.simd_lanes as f64;
                    energy.simd_pj += f64::from(elements) * self.cost.simd_op_pj;
                }
                Instruction::WriteOutputs { bytes } => {
                    serial_cycles += f64::from(bytes) / self.config.feature_bytes_per_cycle as f64;
                    energy.output_traffic_pj += f64::from(bytes) * self.cost.feature_byte_pj;
                }
                Instruction::Simd { kind, elements } => {
                    let per_lane = f64::from(elements) / self.config.simd_lanes as f64;
                    let weight = match kind {
                        SimdOpKind::Move => 0.25,
                        SimdOpKind::Pooling | SimdOpKind::Arithmetic => 1.0,
                        SimdOpKind::Elementwise => 1.5,
                    };
                    serial_cycles += per_lane * weight;
                    energy.simd_pj += f64::from(elements) * self.cost.simd_op_pj * weight;
                }
            }
        }

        let array_cycles = busy.iter().fold(0.0f64, |m, &b| m.max(b));
        let total_cycles = (array_cycles.max(io_cycles) + serial_cycles).ceil() as u64;
        let compute_cycles = compute_busy.iter().fold(0.0f64, |m, &b| m.max(b)).ceil() as u64;
        energy.static_pj += total_cycles as f64 * self.cost.static_per_cycle_pj;

        LayerReport {
            node_id: layer.node_id,
            name: layer.name.clone(),
            is_pim: layer.workload.is_some(),
            cycles: total_cycles,
            compute_cycles,
            macs: layer.workload.as_ref().map_or(0, |w| w.macs),
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SparsityConfig;
    use dbpim_arch::ArchConfig;
    use dbpim_compiler::{
        extract_workloads, Compiler, InputSparsityProfile, MappingMode, ModelWorkloads,
    };
    use dbpim_fta::ModelApprox;
    use dbpim_nn::{zoo, QuantizedModel};
    use dbpim_tensor::random::TensorGenerator;

    /// Builds the four Fig. 7 runs for the tiny CNN.
    fn four_runs() -> Vec<RunReport> {
        let model = zoo::tiny_cnn(10, 11).unwrap();
        let mut gen = TensorGenerator::new(12);
        let (cal, _) = gen.labelled_batch(2, 3, 32, 32, 10).unwrap();
        let quantized = QuantizedModel::quantize(&model, &cal).unwrap();
        let approx = ModelApprox::from_quantized(&quantized).unwrap();
        let mut profile = InputSparsityProfile::new();
        for id in quantized.pim_node_ids() {
            profile.set(id, 0.5);
        }
        let workloads = extract_workloads(&model, Some(&approx), &profile).unwrap();
        let dense_workloads = extract_workloads(&model, None, &profile).unwrap();
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let dense_program = compiler.compile(&dense_workloads, MappingMode::Dense).unwrap();
        let sparse_program = compiler.compile(&workloads, MappingMode::DbPim).unwrap();

        SparsityConfig::all()
            .into_iter()
            .map(|sparsity| {
                let sim = Simulator::new(SimConfig::new(sparsity)).unwrap();
                let program =
                    if sparsity.weight_sparsity() { &sparse_program } else { &dense_program };
                sim.simulate(program).unwrap()
            })
            .collect()
    }

    #[test]
    fn fig7_ordering_holds_for_the_tiny_cnn() {
        let runs = four_runs();
        let base = &runs[0];
        let input = &runs[1];
        let weight = &runs[2];
        let hybrid = &runs[3];

        let s_input = input.speedup_over(base);
        let s_weight = weight.speedup_over(base);
        let s_hybrid = hybrid.speedup_over(base);
        assert!(s_input > 1.0, "input-sparsity speedup {s_input}");
        assert!(s_weight > 1.5, "weight-sparsity speedup {s_weight}");
        assert!(s_hybrid > s_weight, "hybrid {s_hybrid} vs weight {s_weight}");
        assert!(s_hybrid > s_input, "hybrid {s_hybrid} vs input {s_input}");
        assert!(s_hybrid < 16.0, "hybrid speedup implausibly high: {s_hybrid}");

        let e_weight = weight.energy_saving_over(base);
        let e_hybrid = hybrid.energy_saving_over(base);
        assert!(e_weight > 0.2 && e_weight < 0.95, "weight energy saving {e_weight}");
        assert!(e_hybrid > e_weight, "hybrid saving {e_hybrid} vs weight {e_weight}");
        assert!(e_hybrid < 0.95, "hybrid saving {e_hybrid}");

        // The functional work is identical across configurations.
        assert_eq!(base.total_macs(), hybrid.total_macs());
        assert_eq!(weight.total_macs(), input.total_macs());
    }

    #[test]
    fn mapping_mismatch_is_rejected() {
        let model = zoo::tiny_cnn(10, 13).unwrap();
        let workloads = extract_workloads(&model, None, &InputSparsityProfile::new()).unwrap();
        let compiler = Compiler::new(ArchConfig::paper()).unwrap();
        let dense_program = compiler.compile(&workloads, MappingMode::Dense).unwrap();
        let sim = Simulator::new(SimConfig::hybrid()).unwrap();
        assert!(matches!(sim.simulate(&dense_program), Err(SimError::MappingMismatch { .. })));
    }

    #[test]
    fn invalid_cost_model_is_rejected() {
        let mut cost = CostModel::calibrated_28nm();
        cost.cell_compute_pj = f64::NAN;
        assert!(Simulator::with_cost_model(SimConfig::dense_baseline(), cost).is_err());
        let mut config = SimConfig::dense_baseline();
        config.arch.macros = 0;
        assert!(Simulator::new(config).is_err());
    }

    #[test]
    fn reports_have_one_entry_per_layer_and_positive_energy() {
        let runs = four_runs();
        for run in &runs {
            assert!(!run.layers.is_empty());
            assert!(run.total_cycles() > 0);
            assert!(run.energy().total_pj() > 0.0);
            assert!(
                run.energy_efficiency_tops_per_w() > 0.5,
                "{}",
                run.energy_efficiency_tops_per_w()
            );
            assert!(run.average_power_mw() > 0.1);
            // Static energy is attributed to every layer.
            assert!(run.layers.iter().all(|l| l.energy.static_pj > 0.0));
        }
    }

    #[test]
    fn empty_program_simulates_to_empty_report() {
        let sim = Simulator::new(SimConfig::dense_baseline()).unwrap();
        let program = dbpim_compiler::ModelProgram {
            model_name: "empty".to_string(),
            mode: MappingMode::Dense,
            operand_bits: 8,
            layers: vec![],
        };
        let report = sim.simulate(&program).unwrap();
        assert_eq!(report.total_cycles(), 0);
        assert_eq!(report.total_macs(), 0);
    }

    #[test]
    fn simd_only_layer_costs_are_serial() {
        let program = dbpim_compiler::ModelProgram {
            model_name: "simd".to_string(),
            mode: MappingMode::Dense,
            operand_bits: 8,
            layers: vec![dbpim_compiler::LayerProgram {
                node_id: 0,
                name: "relu".to_string(),
                workload: None,
                instructions: vec![Instruction::Simd {
                    kind: SimdOpKind::Elementwise,
                    elements: 1600,
                }],
            }],
        };
        let sim = Simulator::new(SimConfig::dense_baseline()).unwrap();
        let report = sim.simulate(&program).unwrap();
        assert_eq!(report.layers[0].compute_cycles, 0);
        assert!(!report.layers[0].is_pim);
        // 1600 elements / 16 lanes * 1.5 weight = 150 cycles.
        assert_eq!(report.layers[0].cycles, 150);
    }

    #[allow(unused)]
    fn type_checks(_: ModelWorkloads) {}
}
