//! Error type for the simulator.

use std::error::Error;
use std::fmt;

use dbpim_arch::ArchError;
use dbpim_compiler::CompileError;

/// Errors produced by the performance simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// An architecture constraint was violated.
    Arch(ArchError),
    /// Compilation of a workload failed.
    Compile(CompileError),
    /// The program's mapping mode does not match the requested sparsity
    /// configuration (e.g. a dense program run under a weight-sparsity
    /// configuration).
    MappingMismatch {
        /// Mapping mode of the program.
        program: &'static str,
        /// Mapping mode the configuration requires.
        expected: &'static str,
    },
    /// A cost-model parameter is invalid (negative or non-finite).
    InvalidCost {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A sparsity-configuration name does not match any of the four Fig. 7
    /// configurations (see [`SparsityConfig::from_str`](crate::SparsityConfig)).
    UnknownSparsity {
        /// The unrecognized name.
        name: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Arch(e) => write!(f, "architecture error: {e}"),
            SimError::Compile(e) => write!(f, "compile error: {e}"),
            SimError::MappingMismatch { program, expected } => {
                write!(f, "program was compiled for the {program} mapping but the configuration requires {expected}")
            }
            SimError::InvalidCost { parameter, value } => {
                write!(f, "cost-model parameter {parameter} has invalid value {value}")
            }
            SimError::UnknownSparsity { name } => {
                // The expected list comes from the FromStr parse table, so
                // new configurations show up here automatically.
                let expected = crate::SparsityConfig::canonical_names().join(", ");
                write!(f, "unknown sparsity configuration `{name}` (expected one of: {expected})")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Arch(e) => Some(e),
            SimError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for SimError {
    fn from(e: ArchError) -> Self {
        SimError::Arch(e)
    }
}

impl From<CompileError> for SimError {
    fn from(e: CompileError) -> Self {
        SimError::Compile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: SimError = ArchError::UnsupportedThreshold { threshold: 4 }.into();
        assert!(e.to_string().contains("architecture"));
        let e = SimError::MappingMismatch { program: "dense", expected: "db-pim" };
        assert!(e.to_string().contains("dense"));
        let e = SimError::InvalidCost { parameter: "cell_read_pj", value: -1.0 };
        assert!(e.to_string().contains("cell_read_pj"));
    }

    #[test]
    fn unknown_sparsity_lists_every_parseable_name() {
        let e = SimError::UnknownSparsity { name: "sparse".to_string() };
        let message = e.to_string();
        // Derived from the parse table: every canonical name must both
        // appear in the message and round-trip through FromStr.
        for name in crate::SparsityConfig::canonical_names() {
            assert!(message.contains(name), "{message}");
            assert!(name.parse::<crate::SparsityConfig>().is_ok(), "{name}");
        }
        assert_eq!(
            message,
            "unknown sparsity configuration `sparse` (expected one of: base, input, weight, hybrid)"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
