//! Cycle-accurate performance, energy and area simulation for DB-PIM.
//!
//! The paper evaluates DB-PIM with a cycle-accurate simulator driven by
//! post-layout power/area numbers. This crate is that simulator, rebuilt in
//! Rust around a parametric cost model:
//!
//! * [`SparsityConfig`] / [`SimConfig`] — the four Fig. 7 configurations
//!   (dense baseline, input sparsity, weight sparsity, hybrid).
//! * [`Simulator`] — executes a compiled [`dbpim_compiler::ModelProgram`],
//!   charging cycles per macro and energy per event.
//! * [`CostModel`] / [`EnergyBreakdown`] — calibrated 28 nm per-event
//!   energies and the resulting breakdown.
//! * [`AreaModel`] — the Table 3 die area and Table 4 breakdown.
//! * [`RunReport`] — latency, throughput, power, energy efficiency, speedup
//!   and energy-saving comparisons.
//!
//! # Example
//!
//! ```
//! use dbpim_sim::{SimConfig, Simulator, SparsityConfig};
//! use dbpim_compiler::{extract_workloads, Compiler, InputSparsityProfile, MappingMode};
//! use dbpim_arch::ArchConfig;
//! use dbpim_nn::zoo;
//!
//! let model = zoo::tiny_cnn(10, 1)?;
//! let workloads = extract_workloads(&model, None, &InputSparsityProfile::new())?;
//! let compiler = Compiler::new(ArchConfig::paper())?;
//! let program = compiler.compile(&workloads, MappingMode::Dense)?;
//! let sim = Simulator::new(SimConfig::new(SparsityConfig::DenseBaseline))?;
//! let report = sim.simulate(&program)?;
//! assert!(report.total_cycles() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod config;
pub mod dse;
mod energy;
mod engine;
mod error;
mod report;

pub use area::{AreaComponent, AreaModel};
pub use config::{SimConfig, SparsityConfig};
pub use dse::{
    geometry_cost, pareto_frontier, ArchGrid, GridError, ParetoMetrics, MAX_GRID_POINTS,
};
pub use energy::{CostModel, EnergyBreakdown};
pub use engine::Simulator;
pub use error::SimError;
pub use report::{
    peak_throughput_per_macro_gops, peak_throughput_tops, LayerReport, RunReport, PEAK_INPUT_SKIP,
};
