//! Simulation reports: per-layer and whole-run results, comparisons and the
//! derived metrics of Table 3.

use serde::{Deserialize, Serialize};

use dbpim_arch::{ArchConfig, OPERAND_BITS};

use crate::config::SparsityConfig;
use crate::energy::EnergyBreakdown;

/// Result of simulating one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Graph node id of the layer.
    pub node_id: usize,
    /// Layer name.
    pub name: String,
    /// `true` when the layer ran on the PIM macros.
    pub is_pim: bool,
    /// Total cycles attributed to the layer (macro busy time, weight loads,
    /// serial post-processing and SIMD work).
    pub cycles: u64,
    /// Cycles the macros spent computing (excluding loads).
    pub compute_cycles: u64,
    /// Multiply-accumulate operations the layer performs functionally.
    pub macs: u64,
    /// Energy breakdown of the layer.
    pub energy: EnergyBreakdown,
}

/// Result of simulating one model under one sparsity configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Name of the simulated model.
    pub model_name: String,
    /// Sparsity configuration of the run.
    pub sparsity: SparsityConfig,
    /// Clock frequency used to convert cycles to time, in MHz.
    pub frequency_mhz: f64,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
}

impl RunReport {
    /// Total cycles of the run.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total macro compute cycles.
    #[must_use]
    pub fn compute_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.compute_cycles).sum()
    }

    /// Total energy breakdown.
    #[must_use]
    pub fn energy(&self) -> EnergyBreakdown {
        let mut total = EnergyBreakdown::default();
        for layer in &self.layers {
            total.accumulate(&layer.energy);
        }
        total
    }

    /// Total energy in microjoules.
    #[must_use]
    pub fn total_energy_uj(&self) -> f64 {
        self.energy().total_uj()
    }

    /// Total functional MACs of the run.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// End-to-end latency in milliseconds.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.total_cycles() as f64 / (self.frequency_mhz * 1e3)
    }

    /// Achieved throughput in GOPS (two operations per MAC, 8b/8b).
    #[must_use]
    pub fn throughput_gops(&self) -> f64 {
        let seconds = self.total_cycles() as f64 / (self.frequency_mhz * 1e6);
        if seconds <= 0.0 {
            return 0.0;
        }
        2.0 * self.total_macs() as f64 / seconds / 1e9
    }

    /// Average power in milliwatts.
    #[must_use]
    pub fn average_power_mw(&self) -> f64 {
        let seconds = self.total_cycles() as f64 / (self.frequency_mhz * 1e6);
        if seconds <= 0.0 {
            return 0.0;
        }
        self.energy().total_pj() * 1e-12 / seconds * 1e3
    }

    /// System-level energy efficiency in TOPS/W (two ops per MAC).
    #[must_use]
    pub fn energy_efficiency_tops_per_w(&self) -> f64 {
        let energy_j = self.energy().total_pj() * 1e-12;
        if energy_j <= 0.0 {
            return 0.0;
        }
        2.0 * self.total_macs() as f64 / energy_j / 1e12
    }

    /// Speedup of this run relative to `baseline` (`> 1` means faster).
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if self.total_cycles() == 0 {
            return 0.0;
        }
        baseline.total_cycles() as f64 / self.total_cycles() as f64
    }

    /// Energy saving of this run relative to `baseline` as a fraction in
    /// `[0, 1)` (`0.83` means 83 % less energy).
    #[must_use]
    pub fn energy_saving_over(&self, baseline: &RunReport) -> f64 {
        let base = baseline.energy().total_pj();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.energy().total_pj() / base
    }

    /// A fixed-width text table of the per-layer results.
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} / {} @ {} MHz\n{:<28} {:>12} {:>14} {:>14}\n",
            self.model_name,
            self.sparsity,
            self.frequency_mhz,
            "layer",
            "cycles",
            "macs",
            "energy (nJ)"
        ));
        for layer in &self.layers {
            out.push_str(&format!(
                "{:<28} {:>12} {:>14} {:>14.2}\n",
                layer.name,
                layer.cycles,
                layer.macs,
                layer.energy.total_pj() / 1e3
            ));
        }
        out.push_str(&format!(
            "total: {} cycles, {:.3} ms, {:.2} uJ, {:.2} GOPS, {:.2} TOPS/W\n",
            self.total_cycles(),
            self.latency_ms(),
            self.total_energy_uj(),
            self.throughput_gops(),
            self.energy_efficiency_tops_per_w()
        ));
        out
    }
}

/// Peak-throughput model for Table 3.
///
/// Peak throughput assumes every macro processes its maximum number of
/// filters in parallel (`φ_th = 1`), all compartments are active, and the
/// IPU skips `peak_input_skip` of the bit-serial input columns (the paper's
/// peak numbers are quoted under favourable input sparsity). Two operations
/// are counted per MAC.
#[must_use]
pub fn peak_throughput_tops(config: &ArchConfig, peak_input_skip: f64) -> f64 {
    let filters = config.dbmus_per_compartment as f64;
    let inputs = config.compartments_per_macro as f64;
    let effective_bits = (OPERAND_BITS as f64 * (1.0 - peak_input_skip)).max(1.0);
    let macs_per_cycle_per_macro = filters * inputs / effective_bits;
    2.0 * macs_per_cycle_per_macro * config.macros as f64 * config.frequency_mhz * 1e6 / 1e12
}

/// Peak throughput per macro in GOPS (Table 3's "Peak Throughput/Macro").
#[must_use]
pub fn peak_throughput_per_macro_gops(config: &ArchConfig, peak_input_skip: f64) -> f64 {
    peak_throughput_tops(config, peak_input_skip) * 1e3 / config.macros as f64
}

/// Input-sparsity assumption used for the headline peak-throughput numbers.
pub const PEAK_INPUT_SKIP: f64 = 0.6;

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(cycles: u64, macs: u64, energy_pj: f64) -> LayerReport {
        LayerReport {
            node_id: 0,
            name: "layer".to_string(),
            is_pim: true,
            cycles,
            compute_cycles: cycles,
            macs,
            energy: EnergyBreakdown { macro_dynamic_pj: energy_pj, ..EnergyBreakdown::default() },
        }
    }

    fn report(cycles: u64, macs: u64, energy_pj: f64) -> RunReport {
        RunReport {
            model_name: "m".to_string(),
            sparsity: SparsityConfig::DenseBaseline,
            frequency_mhz: 500.0,
            layers: vec![layer(cycles, macs, energy_pj)],
        }
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let r = report(500_000, 1_000_000, 2.0e6);
        assert_eq!(r.total_cycles(), 500_000);
        assert!((r.latency_ms() - 1.0).abs() < 1e-9);
        // 2 Mops in 1 ms = 2 GOPS.
        assert!((r.throughput_gops() - 2.0).abs() < 1e-9);
        // 2 uJ over 1 ms = 2 mW.
        assert!((r.average_power_mw() - 2.0).abs() < 1e-9);
        // 2e6 ops / 2e-6 J = 1e12 ops/J = 1 TOPS/W.
        assert!((r.energy_efficiency_tops_per_w() - 1.0).abs() < 1e-9);
        assert!(r.to_table().contains("total"));
    }

    #[test]
    fn comparisons_against_a_baseline() {
        let fast = report(100_000, 1_000_000, 0.5e6);
        let slow = report(500_000, 1_000_000, 2.0e6);
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-9);
        assert!((fast.energy_saving_over(&slow) - 0.75).abs() < 1e-9);
        assert!((slow.speedup_over(&slow) - 1.0).abs() < 1e-9);
        assert_eq!(slow.energy_saving_over(&slow), 0.0);
    }

    #[test]
    fn peak_throughput_matches_table_3_order_of_magnitude() {
        let config = ArchConfig::paper();
        let tops = peak_throughput_tops(&config, PEAK_INPUT_SKIP);
        let per_macro = peak_throughput_per_macro_gops(&config, PEAK_INPUT_SKIP);
        // Paper: 0.31 TOPS peak, 77.5 GOPS per macro.
        assert!(tops > 0.2 && tops < 0.45, "peak {tops} TOPS");
        assert!(per_macro > 50.0 && per_macro < 110.0, "per macro {per_macro} GOPS");
        // Without input sparsity the peak halves (8 vs ~3.2 bit columns).
        assert!(peak_throughput_tops(&config, 0.0) < tops);
    }

    #[test]
    fn degenerate_reports_do_not_divide_by_zero() {
        let empty = RunReport {
            model_name: "m".to_string(),
            sparsity: SparsityConfig::HybridSparsity,
            frequency_mhz: 500.0,
            layers: vec![],
        };
        assert_eq!(empty.total_cycles(), 0);
        assert_eq!(empty.throughput_gops(), 0.0);
        assert_eq!(empty.average_power_mw(), 0.0);
        assert_eq!(empty.energy_efficiency_tops_per_w(), 0.0);
        assert_eq!(empty.speedup_over(&empty), 0.0);
        assert_eq!(empty.energy_saving_over(&empty), 0.0);
    }
}
