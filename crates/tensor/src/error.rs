//! Error type for tensor operations.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and shape manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The element count of the provided data does not match the shape.
    ShapeMismatch {
        /// Number of elements supplied.
        data_len: usize,
        /// Number of elements the shape requires.
        expected: usize,
    },
    /// Two tensors that must agree in shape do not.
    IncompatibleShapes {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// A zero-sized dimension or empty shape was supplied where it is invalid.
    EmptyShape,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { data_len, expected } => {
                write!(f, "data length {data_len} does not match shape element count {expected}")
            }
            TensorError::IncompatibleShapes { left, right } => {
                write!(f, "incompatible tensor shapes {left:?} and {right:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} is out of bounds for shape {shape:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected a rank-{expected} tensor but got rank {actual}")
            }
            TensorError::EmptyShape => write!(f, "tensor shapes must have at least one dimension"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offending_values() {
        let err = TensorError::ShapeMismatch { data_len: 3, expected: 4 };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('4'));

        let err = TensorError::RankMismatch { expected: 4, actual: 2 };
        assert!(err.to_string().contains("rank"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
