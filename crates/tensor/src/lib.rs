//! Dense tensors, INT8 quantization and bit-level sparsity statistics.
//!
//! This crate is the data substrate of the DB-PIM reproduction. It provides:
//!
//! * [`Tensor`] — a simple dense row-major tensor over `f32`, `i8` or `i32`
//!   elements with shape/stride bookkeeping and the handful of operations the
//!   neural-network substrate needs (indexing, mapping, im2col).
//! * [`quant`] — affine/symmetric INT8 quantization (per-tensor and
//!   per-output-channel), mirroring the 8b/8b setting of the paper.
//! * [`prune`] — deterministic magnitude pruning ([`PruningSpec`]), the
//!   value-level-sparsity mask applied before quantization so zero weights
//!   flow through the whole bit-sparsity pipeline.
//! * [`random`] — deterministic synthetic weight and activation generators
//!   whose value distributions produce the bit-level statistics reported in
//!   Fig. 2 of the paper.
//! * [`stats`] — bit-level sparsity analyses: zero-bit ratios for plain binary
//!   and CSD encodings (Fig. 2(a)) and block-wise zero bit-column statistics
//!   of input features (Fig. 2(b)).
//!
//! # Example
//!
//! ```
//! use dbpim_tensor::{Tensor, quant::QuantParams};
//!
//! let weights = Tensor::from_vec(vec![0.5f32, -0.25, 0.0, 1.0], vec![2, 2])?;
//! let params = QuantParams::symmetric_from_tensor(&weights);
//! let q = params.quantize_tensor(&weights);
//! assert_eq!(q.shape(), &[2, 2]);
//! # Ok::<(), dbpim_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod prune;
pub mod quant;
pub mod random;
pub mod shape;
pub mod stats;
mod tensor;

pub use error::TensorError;
pub use prune::{PruningMode, PruningSpec};
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for a 32-bit floating point tensor.
pub type TensorF32 = Tensor<f32>;
/// Convenience alias for an INT8 tensor (quantized weights / activations).
pub type TensorI8 = Tensor<i8>;
/// Convenience alias for a 32-bit integer accumulator tensor.
pub type TensorI32 = Tensor<i32>;
