//! Magnitude pruning: the value-level-sparsity half of joint value/bit
//! sparsity exploration.
//!
//! The DAC'24 source paper exploits *bit-level* sparsity (zero CSD digits);
//! the authors' follow-up ("Efficient SRAM-PIM Co-design by Joint
//! Exploration of Value-Level and Bit-Level Sparsity") shows the two levels
//! compound: a weight pruned to exactly `0.0` quantizes to `0`, contributes
//! zero CSD digits, stores zero dyadic blocks, and — when a whole filter is
//! pruned — lets the compiler skip the macro array entirely. [`PruningSpec`]
//! describes the magnitude mask applied to a model's float weights *before*
//! width quantization, so every downstream stage (quantizer, FTA, metadata,
//! compiler, simulator) sees the value sparsity without special cases.
//!
//! Determinism is load-bearing: the same spec over the same weights always
//! zeroes the same elements (ties rank by index), so pruned pipelines stay
//! bit-reproducible across runs, resumes and fleet workers.

use std::fmt;

use serde::value::{get_field, type_error, Value};
use serde::{Deserialize, Error, Serialize};

/// Which granularity the magnitude mask removes weights at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PruningMode {
    /// Element-wise global-fraction mask: the smallest-magnitude fraction of
    /// *all* weights in a tensor is zeroed, regardless of position.
    #[default]
    Unstructured,
    /// Per-channel (filter) mask: whole output channels with the smallest L1
    /// norms are zeroed. Structured removal is what lets entire filters skip
    /// their macro tiles at compile time.
    Structured,
}

impl PruningMode {
    /// The canonical serialized / command-line name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PruningMode::Unstructured => "unstructured",
            PruningMode::Structured => "structured",
        }
    }
}

impl fmt::Display for PruningMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A magnitude-pruning mask description: mode plus the fraction of weights
/// (or channels) to remove.
///
/// `fraction == 0.0` is the identity — [`apply`](Self::apply) leaves the
/// tensor untouched, and every spec/entry serializer in the workspace omits
/// an identity spec entirely, which is what keeps pruning-off reports
/// byte-identical to pre-pruning ones.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PruningSpec {
    /// Mask granularity.
    pub mode: PruningMode,
    /// Fraction of weights (unstructured) or output channels (structured)
    /// to zero, in `[0, 1)`.
    pub fraction: f64,
}

impl PruningSpec {
    /// The identity spec: nothing is pruned.
    #[must_use]
    pub fn none() -> Self {
        Self { mode: PruningMode::Unstructured, fraction: 0.0 }
    }

    /// An unstructured (element-wise) mask removing `fraction` of weights.
    /// A zero fraction canonicalizes to [`none`](Self::none).
    #[must_use]
    pub fn unstructured(fraction: f64) -> Self {
        Self { mode: PruningMode::Unstructured, fraction }.canonical()
    }

    /// A structured (per-channel) mask removing `fraction` of channels.
    /// A zero fraction canonicalizes to [`none`](Self::none).
    #[must_use]
    pub fn structured(fraction: f64) -> Self {
        Self { mode: PruningMode::Structured, fraction }.canonical()
    }

    /// Collapses every inactive spelling (`structured` at `0.0`, negative
    /// zero, …) onto the single identity spec. Serialization omits inactive
    /// specs entirely, so distinct inactive spellings could never survive a
    /// save/load round trip — canonicalizing at construction keeps spec
    /// equality, DSE point keys and resume matching consistent with the
    /// serialized form.
    #[must_use]
    pub fn canonical(self) -> Self {
        // Only exact zero (including negative zero) collapses: invalid
        // fractions must keep their value so `validate` still rejects them.
        if self.fraction == 0.0 {
            Self::none()
        } else {
            self
        }
    }

    /// `true` when applying the spec can change a tensor.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.fraction > 0.0
    }

    /// Validates the fraction: finite and in `[0, 1)` (pruning everything
    /// would leave no computation to map).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violation.
    pub fn validate(&self) -> Result<(), String> {
        if !self.fraction.is_finite() || !(0.0..1.0).contains(&self.fraction) {
            return Err(format!("pruning fraction must be in [0, 1), got {}", self.fraction));
        }
        Ok(())
    }

    /// A hashable identity of the spec (the fraction by bit pattern) —
    /// `f64` keeps the spec itself out of `Hash`/`Eq` contexts, so DSE
    /// point keys use this instead.
    #[must_use]
    pub fn key_bits(&self) -> (u8, u64) {
        let mode = match self.mode {
            PruningMode::Unstructured => 0u8,
            PruningMode::Structured => 1u8,
        };
        (mode, self.fraction.to_bits())
    }

    /// A compact human-readable label (`none`, `u0.50`, `s0.25`) for report
    /// rendering.
    #[must_use]
    pub fn label(&self) -> String {
        if !self.is_active() {
            return "none".to_string();
        }
        let tag = match self.mode {
            PruningMode::Unstructured => 'u',
            PruningMode::Structured => 's',
        };
        format!("{tag}{:.2}", self.fraction)
    }

    /// Applies the magnitude mask in place to a row-major tensor whose
    /// leading dimension has `channels` slices (the output-channel
    /// convention weights use). An inactive spec is a no-op; `channels == 0`
    /// or an empty slice is left untouched.
    pub fn apply(&self, values: &mut [f32], channels: usize) {
        if !self.is_active() || values.is_empty() || channels == 0 {
            return;
        }
        match self.mode {
            PruningMode::Unstructured => prune_unstructured(values, self.fraction),
            PruningMode::Structured => prune_structured(values, channels, self.fraction),
        }
    }
}

impl fmt::Display for PruningSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_active() {
            write!(f, "{} {:.2}", self.mode, self.fraction)
        } else {
            f.write_str("none")
        }
    }
}

// Hand-written serde: the vendored derive serializes every field
// unconditionally, but these impls are shared by the spec/entry serializers
// that must omit identity specs — keeping the wire/disk shape explicit here
// means one stable encoding everywhere.
impl std::str::FromStr for PruningSpec {
    type Err = String;

    /// Parses the command-line / label forms: `none`, a bare fraction like
    /// `0.3` (unstructured), `u0.30` / `unstructured:0.3`, or `s0.25` /
    /// `structured:0.25`. [`label`](PruningSpec::label) output round-trips.
    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        let trimmed = raw.trim();
        if trimmed.eq_ignore_ascii_case("none") {
            return Ok(Self::none());
        }
        let (mode, rest) = if let Some(rest) = trimmed.strip_prefix("unstructured:") {
            (PruningMode::Unstructured, rest)
        } else if let Some(rest) = trimmed.strip_prefix("structured:") {
            (PruningMode::Structured, rest)
        } else if let Some(rest) = trimmed.strip_prefix('u') {
            (PruningMode::Unstructured, rest)
        } else if let Some(rest) = trimmed.strip_prefix('s') {
            (PruningMode::Structured, rest)
        } else {
            (PruningMode::Unstructured, trimmed)
        };
        let fraction: f64 = rest.trim().parse().map_err(|_| {
            format!(
                "invalid pruning spec `{raw}` (expected none, a fraction like 0.3, \
                 u<fraction> or s<fraction>)"
            )
        })?;
        let spec = Self { mode, fraction };
        spec.validate()?;
        Ok(spec.canonical())
    }
}

impl Serialize for PruningSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("mode".to_string(), Value::Str(self.mode.name().to_string())),
            ("fraction".to_string(), Value::F64(self.fraction)),
        ])
    }
}

impl Deserialize for PruningSpec {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| type_error("pruning spec map", value))?;
        let mode = match get_field(entries, "mode") {
            Some(Value::Str(name)) => match name.as_str() {
                "unstructured" => PruningMode::Unstructured,
                "structured" => PruningMode::Structured,
                other => return Err(Error::custom(format!("unknown pruning mode `{other}`"))),
            },
            Some(other) => return Err(type_error("pruning mode string", other)),
            None => return Err(Error::custom("missing field `mode`".to_string())),
        };
        let fraction = match get_field(entries, "fraction") {
            Some(Value::F64(f)) => *f,
            Some(Value::I64(i)) => *i as f64,
            Some(Value::U64(u)) => *u as f64,
            Some(other) => return Err(type_error("pruning fraction number", other)),
            None => return Err(Error::custom("missing field `fraction`".to_string())),
        };
        Ok(Self { mode, fraction }.canonical())
    }
}

/// Zeroes the `round(fraction * len)` smallest-magnitude elements. Ties
/// break on the lower index, so the mask is a pure function of the values.
fn prune_unstructured(values: &mut [f32], fraction: f64) {
    let remove = target_count(values.len(), fraction);
    if remove == 0 {
        return;
    }
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].abs().total_cmp(&values[b].abs()).then_with(|| a.cmp(&b)));
    for &index in &order[..remove] {
        values[index] = 0.0;
    }
}

/// Zeroes the `round(fraction * channels)` whole channels (leading-dimension
/// slices) with the smallest L1 norms. Ties break on the lower channel.
fn prune_structured(values: &mut [f32], channels: usize, fraction: f64) {
    let remove = target_count(channels, fraction);
    if remove == 0 {
        return;
    }
    let per_channel = values.len() / channels;
    if per_channel == 0 {
        return;
    }
    let norms: Vec<f64> = (0..channels)
        .map(|c| {
            values[c * per_channel..(c + 1) * per_channel].iter().map(|&v| f64::from(v.abs())).sum()
        })
        .collect();
    let mut order: Vec<usize> = (0..channels).collect();
    order.sort_by(|&a, &b| norms[a].total_cmp(&norms[b]).then_with(|| a.cmp(&b)));
    for &channel in &order[..remove] {
        values[channel * per_channel..(channel + 1) * per_channel].fill(0.0);
    }
}

/// How many of `total` items a fraction removes — round-to-nearest, capped
/// so at least one item always survives.
fn target_count(total: usize, fraction: f64) -> usize {
    let raw = (fraction * total as f64).round() as usize;
    raw.min(total.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_spec_is_a_no_op() {
        let mut values = vec![0.5f32, -0.1, 0.9, 0.0];
        let original = values.clone();
        PruningSpec::none().apply(&mut values, 2);
        assert_eq!(values, original);
        assert!(!PruningSpec::none().is_active());
        assert_eq!(PruningSpec::none().label(), "none");
    }

    #[test]
    fn unstructured_removes_the_smallest_magnitudes() {
        let mut values = vec![0.5f32, -0.1, 0.9, -0.7, 0.05, 0.3, -0.2, 0.8];
        PruningSpec::unstructured(0.5).apply(&mut values, 2);
        assert_eq!(values, vec![0.5, 0.0, 0.9, -0.7, 0.0, 0.0, 0.0, 0.8]);
        assert_eq!(values.iter().filter(|&&v| v == 0.0).count(), 4);
    }

    #[test]
    fn structured_removes_whole_channels_by_l1_norm() {
        // Channel 1 has the smallest L1 norm; the whole row must go.
        let mut values = vec![0.9f32, -0.8, 0.01, 0.02, 0.5, 0.6];
        PruningSpec::structured(0.34).apply(&mut values, 3);
        assert_eq!(values, vec![0.9, -0.8, 0.0, 0.0, 0.5, 0.6]);
    }

    #[test]
    fn ties_break_deterministically_on_index() {
        let mut a = vec![0.1f32, 0.1, 0.1, 0.1];
        let mut b = a.clone();
        PruningSpec::unstructured(0.5).apply(&mut a, 1);
        PruningSpec::unstructured(0.5).apply(&mut b, 1);
        assert_eq!(a, b);
        assert_eq!(a, vec![0.0, 0.0, 0.1, 0.1], "lowest indices pruned first on ties");
    }

    #[test]
    fn at_least_one_element_survives() {
        let mut values = vec![0.4f32, 0.2];
        PruningSpec::unstructured(0.99).apply(&mut values, 1);
        assert_eq!(values.iter().filter(|&&v| v != 0.0).count(), 1);
        let mut channels = vec![1.0f32, 2.0, 3.0, 4.0];
        PruningSpec::structured(0.99).apply(&mut channels, 2);
        assert_eq!(channels, vec![0.0, 0.0, 3.0, 4.0]);
    }

    #[test]
    fn inactive_spellings_canonicalize_to_the_identity() {
        assert_eq!(PruningSpec::structured(0.0), PruningSpec::none());
        assert_eq!(PruningSpec::unstructured(0.0), PruningSpec::none());
        assert_eq!(PruningSpec::unstructured(-0.0), PruningSpec::none());
        assert_eq!("s0".parse::<PruningSpec>().unwrap(), PruningSpec::none());
        let raw = PruningSpec { mode: PruningMode::Structured, fraction: 0.0 };
        assert_eq!(raw.canonical().key_bits(), PruningSpec::none().key_bits());
    }

    #[test]
    fn validation_bounds_the_fraction() {
        assert!(PruningSpec::none().validate().is_ok());
        assert!(PruningSpec::unstructured(0.5).validate().is_ok());
        assert!(PruningSpec::unstructured(1.0).validate().is_err());
        assert!(PruningSpec::unstructured(-0.1).validate().is_err());
        assert!(PruningSpec::unstructured(f64::NAN).validate().is_err());
    }

    #[test]
    fn serde_round_trips_and_is_stable() {
        for spec in
            [PruningSpec::none(), PruningSpec::unstructured(0.25), PruningSpec::structured(0.5)]
        {
            let value = spec.to_value();
            let back = PruningSpec::from_value(&value).unwrap();
            assert_eq!(back, spec);
        }
        assert!(PruningSpec::from_value(&Value::Str("nope".to_string())).is_err());
    }

    #[test]
    fn key_bits_distinguish_mode_and_fraction() {
        let a = PruningSpec::unstructured(0.5).key_bits();
        let b = PruningSpec::structured(0.5).key_bits();
        let c = PruningSpec::unstructured(0.25).key_bits();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, PruningSpec::unstructured(0.5).key_bits());
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(PruningSpec::unstructured(0.5).label(), "u0.50");
        assert_eq!(PruningSpec::structured(0.25).label(), "s0.25");
    }
}
