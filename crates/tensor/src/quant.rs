//! Affine and symmetric quantization, parameterized over operand width.
//!
//! The paper evaluates every model at 8b/8b precision; [`QuantParams`] and
//! [`QuantizedTensor`] implement that INT8 path. Weights use symmetric
//! per-output-channel quantization (zero point 0), activations use per-tensor
//! affine quantization; both are standard post-training quantization choices
//! that the FTA algorithm operates on top of.
//!
//! [`WideQuantizedTensor`] generalizes the *weight* side to any supported
//! [`OperandWidth`] (INT4/INT8/INT12/INT16): values are stored as `i32`
//! clamped to the width's two's-complement range, with per-channel symmetric
//! scales whose `q_max` is the width's largest value. At [`OperandWidth::Int8`]
//! the produced values are numerically identical to the INT8 path.

use dbpim_csd::OperandWidth;
use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Scale/zero-point pair mapping a real value `x` to `q = round(x / scale) + zero_point`.
///
/// # Examples
///
/// ```
/// use dbpim_tensor::quant::QuantParams;
///
/// let p = QuantParams::new(0.5, 0);
/// assert_eq!(p.quantize(63.2), 126);
/// assert_eq!(p.dequantize(126), 63.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    scale: f32,
    zero_point: i32,
}

impl QuantParams {
    /// Creates quantization parameters from a scale and zero point.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    #[must_use]
    pub fn new(scale: f32, zero_point: i32) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "quantization scale must be positive");
        Self { scale, zero_point }
    }

    /// The quantization scale.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The quantization zero point.
    #[must_use]
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Symmetric parameters (zero point 0) covering `[-abs_max, abs_max]`.
    ///
    /// A zero or degenerate `abs_max` falls back to a scale of 1, so an
    /// all-zero tensor quantizes to all zeros.
    #[must_use]
    pub fn symmetric(abs_max: f32) -> Self {
        Self::symmetric_for_width(abs_max, OperandWidth::Int8)
    }

    /// Symmetric parameters whose `q_max` is the largest value of an operand
    /// width, so `abs_max` maps onto `width.max_value()`.
    ///
    /// At [`OperandWidth::Int8`] this is identical to
    /// [`symmetric`](Self::symmetric).
    #[must_use]
    pub fn symmetric_for_width(abs_max: f32, width: OperandWidth) -> Self {
        let scale = if abs_max > f32::EPSILON { abs_max / width.max_value() as f32 } else { 1.0 };
        Self { scale, zero_point: 0 }
    }

    /// Symmetric parameters calibrated from the absolute maximum of a tensor.
    #[must_use]
    pub fn symmetric_from_tensor(tensor: &Tensor<f32>) -> Self {
        Self::symmetric(tensor.abs_max())
    }

    /// Affine INT8 parameters covering the closed range `[min, max]`.
    ///
    /// The range is widened to include zero so that a real zero maps exactly
    /// onto an integer (required for zero-padding correctness). This is the
    /// [`OperandWidth::Int8`] instance of
    /// [`affine_from_range_for_width`](Self::affine_from_range_for_width).
    #[must_use]
    pub fn affine_from_range(min: f32, max: f32) -> Self {
        Self::affine_from_range_for_width(min, max, OperandWidth::Int8)
    }

    /// Affine parameters covering `[min, max]` at an arbitrary operand
    /// width: the zero point and clamp bounds come from
    /// `width.min_value()`/`width.max_value()`, and the scale spreads the
    /// range over the width's `2^bits - 1` steps. (An earlier version
    /// hardcoded the INT8 bounds for every width, collapsing wide
    /// activations onto `[-128, 127]`.)
    #[must_use]
    pub fn affine_from_range_for_width(min: f32, max: f32, width: OperandWidth) -> Self {
        let min = min.min(0.0);
        let max = max.max(0.0);
        let range = (max - min).max(f32::EPSILON);
        let q_min = width.min_value() as f32;
        let q_max = width.max_value() as f32;
        let scale = range / (q_max - q_min);
        let zero_point = (q_min - min / scale).round() as i32;
        Self { scale, zero_point: zero_point.clamp(width.min_value(), width.max_value()) }
    }

    /// Quantizes one real value to INT8 (round to nearest, saturating).
    #[must_use]
    pub fn quantize(&self, value: f32) -> i8 {
        self.quantize_wide(value, OperandWidth::Int8) as i8
    }

    /// Quantizes one real value to the given operand width (round to
    /// nearest, saturating at the width's two's-complement range).
    #[must_use]
    pub fn quantize_wide(&self, value: f32, width: OperandWidth) -> i32 {
        let q = (value / self.scale).round() as i32 + self.zero_point;
        q.clamp(width.min_value(), width.max_value())
    }

    /// Dequantizes one width-generic value back to a real value.
    #[must_use]
    pub fn dequantize_wide(&self, value: i32) -> f32 {
        (value - self.zero_point) as f32 * self.scale
    }

    /// Dequantizes one INT8 value back to a real value.
    #[must_use]
    pub fn dequantize(&self, value: i8) -> f32 {
        (i32::from(value) - self.zero_point) as f32 * self.scale
    }

    /// Quantizes every element of a tensor.
    #[must_use]
    pub fn quantize_tensor(&self, tensor: &Tensor<f32>) -> Tensor<i8> {
        tensor.map(|&v| self.quantize(v))
    }

    /// Dequantizes every element of a tensor.
    #[must_use]
    pub fn dequantize_tensor(&self, tensor: &Tensor<i8>) -> Tensor<f32> {
        tensor.map(|&v| self.dequantize(v))
    }
}

/// Quantization scheme attached to a quantized tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuantScheme {
    /// One scale/zero-point pair for the whole tensor.
    PerTensor(QuantParams),
    /// One symmetric scale per slice along `axis` (the output-channel axis for
    /// convolution and linear weights).
    PerChannel {
        /// Axis along which parameters vary.
        axis: usize,
        /// One parameter set per index of `axis`.
        params: Vec<QuantParams>,
    },
}

impl QuantScheme {
    /// The parameters applying to the slice `channel` along the scheme's axis.
    ///
    /// For a per-tensor scheme the channel is ignored.
    #[must_use]
    pub fn params_for_channel(&self, channel: usize) -> QuantParams {
        match self {
            QuantScheme::PerTensor(p) => *p,
            QuantScheme::PerChannel { params, .. } => params[channel % params.len()],
        }
    }
}

/// An INT8 tensor together with the scheme that produced it.
///
/// # Examples
///
/// ```
/// use dbpim_tensor::{Tensor, quant::QuantizedTensor};
///
/// let w = Tensor::from_vec(vec![0.1f32, -0.9, 0.4, 0.0], vec![2, 2])?;
/// let q = QuantizedTensor::quantize_per_channel(&w, 0);
/// let back = q.dequantize();
/// assert_eq!(back.shape(), w.shape());
/// # Ok::<(), dbpim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    values: Tensor<i8>,
    scheme: QuantScheme,
}

impl QuantizedTensor {
    /// Wraps already-quantized values with their scheme.
    #[must_use]
    pub fn new(values: Tensor<i8>, scheme: QuantScheme) -> Self {
        Self { values, scheme }
    }

    /// Per-tensor symmetric quantization of a float tensor.
    #[must_use]
    pub fn quantize_per_tensor(tensor: &Tensor<f32>) -> Self {
        let params = QuantParams::symmetric_from_tensor(tensor);
        Self { values: params.quantize_tensor(tensor), scheme: QuantScheme::PerTensor(params) }
    }

    /// Per-channel symmetric quantization along `axis` (must be axis 0 of a
    /// rank >= 1 tensor, the output-channel convention used for weights).
    ///
    /// This is the INT8 instance of
    /// [`WideQuantizedTensor::quantize_per_channel`] — one algorithm, so the
    /// two paths cannot drift apart; INT8 values always fit `i8`.
    ///
    /// # Panics
    ///
    /// Panics if `axis != 0`; only the output-channel axis is supported.
    #[must_use]
    pub fn quantize_per_channel(tensor: &Tensor<f32>, axis: usize) -> Self {
        let wide = WideQuantizedTensor::quantize_per_channel(tensor, axis, OperandWidth::Int8);
        Self { values: wide.values.map(|&v| v as i8), scheme: wide.scheme }
    }

    /// The quantized INT8 values.
    #[must_use]
    pub fn values(&self) -> &Tensor<i8> {
        &self.values
    }

    /// Mutable access to the quantized values (used by the FTA approximation,
    /// which rewrites weights in place while keeping the original scheme).
    pub fn values_mut(&mut self) -> &mut Tensor<i8> {
        &mut self.values
    }

    /// The quantization scheme.
    #[must_use]
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// Dequantizes back to a float tensor.
    #[must_use]
    pub fn dequantize(&self) -> Tensor<f32> {
        match &self.scheme {
            QuantScheme::PerTensor(p) => p.dequantize_tensor(&self.values),
            QuantScheme::PerChannel { params, .. } => {
                let channels = self.values.shape()[0];
                let per_channel = self.values.numel() / channels;
                let mut out = Vec::with_capacity(self.values.numel());
                for (c, p) in params.iter().enumerate().take(channels) {
                    out.extend(
                        self.values.data()[c * per_channel..(c + 1) * per_channel]
                            .iter()
                            .map(|&v| p.dequantize(v)),
                    );
                }
                Tensor::from_vec(out, self.values.shape().to_vec())
                    .expect("same element count as the quantized tensor")
            }
        }
    }

    /// Quantization error (mean squared) introduced relative to `reference`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] when shapes differ.
    pub fn quantization_mse(&self, reference: &Tensor<f32>) -> Result<f32, TensorError> {
        reference.mse(&self.dequantize())
    }
}

/// A width-generic quantized weight tensor: `i32` values clamped to an
/// [`OperandWidth`]'s range, with per-channel symmetric scales.
///
/// This is the INT4/INT12/INT16 counterpart of [`QuantizedTensor`]; at
/// [`OperandWidth::Int8`] the values agree element-wise with
/// [`QuantizedTensor::quantize_per_channel`].
///
/// # Examples
///
/// ```
/// use dbpim_csd::OperandWidth;
/// use dbpim_tensor::{Tensor, quant::WideQuantizedTensor};
///
/// let w = Tensor::from_vec(vec![0.1f32, -0.9, 0.4, 0.0], vec![2, 2])?;
/// let q = WideQuantizedTensor::quantize_per_channel(&w, 0, OperandWidth::Int12);
/// assert!(q.values().data().iter().all(|&v| OperandWidth::Int12.contains(v)));
/// assert_eq!(q.dequantize().shape(), w.shape());
/// # Ok::<(), dbpim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WideQuantizedTensor {
    width: OperandWidth,
    values: Tensor<i32>,
    scheme: QuantScheme,
}

impl WideQuantizedTensor {
    /// Per-channel symmetric quantization along `axis` (must be axis 0, the
    /// output-channel convention used for weights) at the given width.
    ///
    /// # Panics
    ///
    /// Panics if `axis != 0`; only the output-channel axis is supported.
    #[must_use]
    pub fn quantize_per_channel(tensor: &Tensor<f32>, axis: usize, width: OperandWidth) -> Self {
        assert_eq!(axis, 0, "per-channel quantization is only supported along axis 0");
        let channels = tensor.shape()[0];
        let per_channel = tensor.numel() / channels;
        let mut params = Vec::with_capacity(channels);
        let mut values = Vec::with_capacity(tensor.numel());
        for c in 0..channels {
            let slice = &tensor.data()[c * per_channel..(c + 1) * per_channel];
            let abs_max = slice.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let p = QuantParams::symmetric_for_width(abs_max, width);
            values.extend(slice.iter().map(|&v| p.quantize_wide(v, width)));
            params.push(p);
        }
        let values = Tensor::from_vec(values, tensor.shape().to_vec())
            .expect("same element count as the source tensor");
        Self { width, values, scheme: QuantScheme::PerChannel { axis, params } }
    }

    /// The operand width the values are clamped to.
    #[must_use]
    pub fn width(&self) -> OperandWidth {
        self.width
    }

    /// The quantized values.
    #[must_use]
    pub fn values(&self) -> &Tensor<i32> {
        &self.values
    }

    /// The quantization scheme.
    #[must_use]
    pub fn scheme(&self) -> &QuantScheme {
        &self.scheme
    }

    /// Dequantizes back to a float tensor.
    #[must_use]
    pub fn dequantize(&self) -> Tensor<f32> {
        match &self.scheme {
            QuantScheme::PerTensor(p) => self.values.map(|&v| p.dequantize_wide(v)),
            QuantScheme::PerChannel { params, .. } => {
                let channels = self.values.shape()[0];
                let per_channel = self.values.numel() / channels;
                let mut out = Vec::with_capacity(self.values.numel());
                for (c, p) in params.iter().enumerate().take(channels) {
                    out.extend(
                        self.values.data()[c * per_channel..(c + 1) * per_channel]
                            .iter()
                            .map(|&v| p.dequantize_wide(v)),
                    );
                }
                Tensor::from_vec(out, self.values.shape().to_vec())
                    .expect("same element count as the quantized tensor")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_quantization_round_trips_small_error() {
        let t = Tensor::from_vec(vec![0.5f32, -1.0, 0.25, 0.0, 0.99, -0.33], vec![6]).unwrap();
        let q = QuantizedTensor::quantize_per_tensor(&t);
        let err = q.quantization_mse(&t).unwrap();
        assert!(err < 1e-4, "quantization error too large: {err}");
    }

    #[test]
    fn per_channel_uses_independent_scales() {
        // Channel 0 has tiny values, channel 1 large ones; per-channel
        // quantization must not crush channel 0 to zero.
        let t = Tensor::from_vec(vec![0.01f32, -0.02, 5.0, -4.0], vec![2, 2]).unwrap();
        let q = QuantizedTensor::quantize_per_channel(&t, 0);
        assert!(q.values().data()[0].unsigned_abs() > 30);
        let per_tensor = QuantizedTensor::quantize_per_tensor(&t);
        assert!(per_tensor.values().data()[0].unsigned_abs() <= 1);
    }

    #[test]
    fn affine_range_maps_zero_exactly() {
        let p = QuantParams::affine_from_range(0.0, 6.0);
        let zero_q = p.quantize(0.0);
        assert!((p.dequantize(zero_q)).abs() < 1e-6);
        assert_eq!(p.quantize(6.0), 127);
    }

    #[test]
    fn affine_bounds_follow_the_operand_width() {
        // Regression: the zero point and clamp bounds must come from the
        // width, not hardcoded INT8 constants.
        for width in [OperandWidth::Int4, OperandWidth::Int12, OperandWidth::Int16] {
            let p = QuantParams::affine_from_range_for_width(0.0, 6.0, width);
            // A one-sided range must anchor its zero point at the width's
            // minimum so the full positive code space is usable.
            assert_eq!(p.zero_point(), width.min_value(), "{width}");
            assert_eq!(p.quantize_wide(0.0, width), width.min_value(), "{width}");
            assert_eq!(p.quantize_wide(6.0, width), width.max_value(), "{width}");
            // Real zero maps exactly onto an integer code.
            let zero_q = p.quantize_wide(0.0, width);
            assert!(p.dequantize_wide(zero_q).abs() < 1e-6, "{width}");
            // Two-sided ranges stay inside the width's code space too.
            let p = QuantParams::affine_from_range_for_width(-3.0, 5.0, width);
            assert!(width.contains(p.zero_point()), "{width}: {}", p.zero_point());
            assert_eq!(p.quantize_wide(5.0, width), width.max_value(), "{width}");
            assert_eq!(p.quantize_wide(-3.0, width), width.min_value(), "{width}");
        }
        // Wider widths resolve the same range more finely.
        let narrow = QuantParams::affine_from_range_for_width(0.0, 6.0, OperandWidth::Int4);
        let wide = QuantParams::affine_from_range_for_width(0.0, 6.0, OperandWidth::Int16);
        assert!(wide.scale() < narrow.scale());
    }

    #[test]
    fn affine_int8_path_is_unchanged_by_the_width_parameterization() {
        for (min, max) in [(0.0f32, 6.0f32), (-1.5, 2.5), (-4.0, 0.0), (0.0, 0.0)] {
            let classic = QuantParams::affine_from_range(min, max);
            let via_width = QuantParams::affine_from_range_for_width(min, max, OperandWidth::Int8);
            assert_eq!(classic, via_width);
            assert_eq!(classic.zero_point().clamp(-128, 127), classic.zero_point());
        }
    }

    #[test]
    fn quantize_saturates() {
        let p = QuantParams::new(0.1, 0);
        assert_eq!(p.quantize(1e9), 127);
        assert_eq!(p.quantize(-1e9), -128);
    }

    #[test]
    fn all_zero_tensor_stays_zero() {
        let t = Tensor::<f32>::zeros(vec![4]).unwrap();
        let q = QuantizedTensor::quantize_per_tensor(&t);
        assert!(q.values().data().iter().all(|&v| v == 0));
        assert!(q.dequantize().data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scheme_lookup_per_channel() {
        let t = Tensor::from_vec(vec![1.0f32, 2.0, 4.0, 8.0], vec![2, 2]).unwrap();
        let q = QuantizedTensor::quantize_per_channel(&t, 0);
        let p0 = q.scheme().params_for_channel(0);
        let p1 = q.scheme().params_for_channel(1);
        assert!(p1.scale() > p0.scale());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = QuantParams::new(0.0, 0);
    }

    #[test]
    fn wide_int8_matches_the_int8_path_elementwise() {
        let t = Tensor::from_vec(vec![0.01f32, -0.02, 5.0, -4.0, 0.7, -0.7], vec![2, 3]).unwrap();
        let narrow = QuantizedTensor::quantize_per_channel(&t, 0);
        let wide = WideQuantizedTensor::quantize_per_channel(&t, 0, OperandWidth::Int8);
        for (&a, &b) in narrow.values().data().iter().zip(wide.values().data()) {
            assert_eq!(i32::from(a), b);
        }
        assert_eq!(wide.width(), OperandWidth::Int8);
    }

    #[test]
    fn wide_widths_respect_their_ranges_and_resolution_order() {
        let t = Tensor::from_vec((0..32).map(|i| (i as f32 - 16.0) / 5.0).collect(), vec![2, 16])
            .unwrap();
        let mut previous_mse = f32::INFINITY;
        for width in OperandWidth::all() {
            let q = WideQuantizedTensor::quantize_per_channel(&t, 0, width);
            assert!(q.values().data().iter().all(|&v| width.contains(v)), "{width}");
            let mse = t.mse(&q.dequantize()).unwrap();
            assert!(mse <= previous_mse, "{width}: mse {mse} > previous {previous_mse}");
            previous_mse = mse;
        }
        // INT16 resolution on this tensor is essentially exact.
        assert!(previous_mse < 1e-6);
    }

    #[test]
    fn quantize_wide_saturates_at_the_width_range() {
        let p = QuantParams::new(0.1, 0);
        assert_eq!(p.quantize_wide(1e9, OperandWidth::Int4), 7);
        assert_eq!(p.quantize_wide(-1e9, OperandWidth::Int4), -8);
        assert_eq!(p.quantize_wide(1e9, OperandWidth::Int16), 32767);
        assert_eq!(p.dequantize_wide(100), 10.0);
    }
}
