//! Deterministic synthetic weight and activation generators.
//!
//! The paper's experiments start from pre-trained CIFAR-100 models. This
//! reproduction substitutes synthetic tensors whose value distributions match
//! the statistical properties that drive every architectural result:
//!
//! * trained convolution/linear weights are approximately zero-centred
//!   Gaussian/Laplacian with a thin tail — after symmetric INT8 quantization
//!   most magnitudes are small, which is exactly what produces the 65–85 %
//!   bit-level sparsity of Fig. 2(a);
//! * post-ReLU activations are non-negative with a large mass at exactly zero
//!   and an exponential-ish tail, which produces the block-wise zero
//!   bit-column behaviour of Fig. 2(b).
//!
//! All generators take an explicit seed so every experiment is reproducible.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Value distribution used for synthetic tensors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Zero-centred Gaussian with the given standard deviation.
    Gaussian {
        /// Standard deviation.
        std: f32,
    },
    /// Zero-centred Laplace distribution with the given scale (heavier tail
    /// than the Gaussian; typical of trained compact-model weights).
    Laplace {
        /// Scale parameter `b`.
        scale: f32,
    },
    /// Uniform distribution over `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f32,
        /// Exclusive upper bound.
        high: f32,
    },
    /// Post-ReLU activation model: with probability `zero_prob` the value is
    /// exactly zero, otherwise it is the absolute value of a Gaussian with
    /// standard deviation `std`.
    Relu {
        /// Probability mass at exactly zero.
        zero_prob: f64,
        /// Standard deviation of the non-zero half-Gaussian part.
        std: f32,
    },
}

impl Distribution {
    fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
        match *self {
            Distribution::Gaussian { std } => gaussian(rng) * std,
            Distribution::Laplace { scale } => {
                let u: f64 = rng.gen_range(-0.5..0.5);
                let v = -u.signum() * (1.0 - 2.0 * u.abs()).ln();
                (v as f32) * scale
            }
            Distribution::Uniform { low, high } => rng.gen_range(low..high),
            Distribution::Relu { zero_prob, std } => {
                if rng.gen_bool(zero_prob) {
                    0.0
                } else {
                    gaussian(rng).abs() * std
                }
            }
        }
    }
}

/// One standard Gaussian sample via the Box–Muller transform.
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Deterministic tensor generator.
///
/// # Examples
///
/// ```
/// use dbpim_tensor::random::{Distribution, TensorGenerator};
///
/// let mut gen = TensorGenerator::new(42);
/// let w = gen.tensor(vec![16, 3, 3, 3], Distribution::Gaussian { std: 0.1 })?;
/// assert_eq!(w.numel(), 16 * 27);
/// # Ok::<(), dbpim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TensorGenerator {
    rng: ChaCha8Rng,
}

impl TensorGenerator {
    /// Creates a generator with a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Generates a tensor of the given shape and distribution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn tensor(
        &mut self,
        dims: Vec<usize>,
        dist: Distribution,
    ) -> Result<Tensor<f32>, TensorError> {
        let mut t = Tensor::<f32>::zeros(dims)?;
        for v in t.data_mut() {
            *v = dist.sample(&mut self.rng);
        }
        Ok(t)
    }

    /// Generates a "trained-looking" weight tensor: Laplace-distributed with a
    /// standard deviation scaled by fan-in (He-style), which reproduces the
    /// weight bit-sparsity levels of Fig. 2(a).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn weight_tensor(&mut self, dims: Vec<usize>) -> Result<Tensor<f32>, TensorError> {
        let fan_in: usize = dims.iter().skip(1).product::<usize>().max(1);
        let std = (2.0 / fan_in as f32).sqrt();
        self.tensor(dims, Distribution::Laplace { scale: std / std::f32::consts::SQRT_2 })
    }

    /// Generates a post-ReLU activation tensor with the given zero mass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn activation_tensor(
        &mut self,
        dims: Vec<usize>,
        zero_prob: f64,
    ) -> Result<Tensor<f32>, TensorError> {
        self.tensor(dims, Distribution::Relu { zero_prob, std: 1.0 })
    }

    /// Generates a synthetic labelled batch: `batch` images of shape
    /// `[channels, height, width]` plus one class label per image in
    /// `0..classes`. Images of the same class share a class-dependent bias so
    /// that classification fidelity between two models is a meaningful signal.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn labelled_batch(
        &mut self,
        batch: usize,
        channels: usize,
        height: usize,
        width: usize,
        classes: usize,
    ) -> Result<(Vec<Tensor<f32>>, Vec<usize>), TensorError> {
        let _span = dbpim_trace::span!("tensor.batch", batch = batch, classes = classes);
        let mut images = Vec::with_capacity(batch);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch {
            let label = self.rng.gen_range(0..classes);
            let mut img =
                self.tensor(vec![channels, height, width], Distribution::Gaussian { std: 0.5 })?;
            // Class-dependent structure: a deterministic low-frequency pattern.
            let phase = label as f32 / classes as f32;
            for (i, v) in img.data_mut().iter_mut().enumerate() {
                let x = i as f32 / (channels * height * width) as f32;
                *v += (2.0 * std::f32::consts::PI * (x + phase)).sin();
            }
            images.push(img);
            labels.push(label);
        }
        Ok((images, labels))
    }

    /// Draws a uniformly random usize below `bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.rng.gen_range(0..bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = TensorGenerator::new(7);
        let mut b = TensorGenerator::new(7);
        let ta = a.tensor(vec![64], Distribution::Gaussian { std: 1.0 }).unwrap();
        let tb = b.tensor(vec![64], Distribution::Gaussian { std: 1.0 }).unwrap();
        assert_eq!(ta.data(), tb.data());

        let mut c = TensorGenerator::new(8);
        let tc = c.tensor(vec![64], Distribution::Gaussian { std: 1.0 }).unwrap();
        assert_ne!(ta.data(), tc.data());
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut g = TensorGenerator::new(1);
        let t = g.tensor(vec![20_000], Distribution::Gaussian { std: 2.0 }).unwrap();
        let mean = t.mean();
        let var: f32 =
            t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.numel() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn relu_distribution_has_requested_zero_mass() {
        let mut g = TensorGenerator::new(2);
        let t = g.activation_tensor(vec![50_000], 0.6).unwrap();
        let zeros = t.data().iter().filter(|&&v| v == 0.0).count() as f64 / t.numel() as f64;
        assert!((zeros - 0.6).abs() < 0.02, "zero mass {zeros}");
        assert!(t.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn laplace_is_heavier_tailed_than_uniform() {
        let mut g = TensorGenerator::new(3);
        let t = g.tensor(vec![10_000], Distribution::Laplace { scale: 1.0 }).unwrap();
        let beyond3 = t.data().iter().filter(|v| v.abs() > 3.0).count();
        assert!(beyond3 > 0, "laplace should produce tail samples");
    }

    #[test]
    fn weight_tensor_scales_with_fan_in() {
        let mut g = TensorGenerator::new(4);
        let small_fan = g.weight_tensor(vec![8, 4]).unwrap();
        let large_fan = g.weight_tensor(vec![8, 4096]).unwrap();
        assert!(small_fan.abs_max() > large_fan.abs_max());
    }

    #[test]
    fn labelled_batch_has_matching_lengths() {
        let mut g = TensorGenerator::new(5);
        let (images, labels) = g.labelled_batch(10, 3, 8, 8, 100).unwrap();
        assert_eq!(images.len(), 10);
        assert_eq!(labels.len(), 10);
        assert!(labels.iter().all(|&l| l < 100));
        assert_eq!(images[0].shape(), &[3, 8, 8]);
    }
}
