//! Tensor shapes and row-major stride arithmetic.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;

/// The shape of a dense row-major tensor.
///
/// # Examples
///
/// ```
/// use dbpim_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4])?;
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// assert_eq!(s.linear_index(&[1, 2, 3])?, 23);
/// # Ok::<(), dbpim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] when `dims` is empty or any
    /// dimension is zero.
    pub fn new(dims: Vec<usize>) -> Result<Self, TensorError> {
        if dims.is_empty() || dims.contains(&0) {
            return Err(TensorError::EmptyShape);
        }
        Ok(Self { dims })
    }

    /// The dimension sizes.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides (in elements) for each dimension.
    #[must_use]
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index into a linear element offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index rank or any
    /// component is out of range.
    pub fn linear_index(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        Ok(index.iter().zip(self.strides()).map(|(&i, s)| i * s).sum())
    }

    /// Converts a linear element offset back into a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= self.numel()`.
    #[must_use]
    pub fn multi_index(&self, mut offset: usize) -> Vec<usize> {
        assert!(offset < self.numel(), "offset {offset} out of range for {:?}", self.dims);
        let mut index = Vec::with_capacity(self.dims.len());
        for stride in self.strides() {
            index.push(offset / stride);
            offset %= stride;
        }
        index
    }
}

impl From<Shape> for Vec<usize> {
    fn from(shape: Shape) -> Self {
        shape.dims
    }
}

impl TryFrom<Vec<usize>> for Shape {
    type Error = TensorError;

    fn try_from(dims: Vec<usize>) -> Result<Self, Self::Error> {
        Self::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]).unwrap();
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn linear_and_multi_index_are_inverses() {
        let s = Shape::new(vec![3, 5, 2]).unwrap();
        for offset in 0..s.numel() {
            let idx = s.multi_index(offset);
            assert_eq!(s.linear_index(&idx).unwrap(), offset);
        }
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert_eq!(Shape::new(vec![]).unwrap_err(), TensorError::EmptyShape);
        assert_eq!(Shape::new(vec![2, 0]).unwrap_err(), TensorError::EmptyShape);
    }

    #[test]
    fn out_of_bounds_index_is_rejected() {
        let s = Shape::new(vec![2, 2]).unwrap();
        assert!(s.linear_index(&[2, 0]).is_err());
        assert!(s.linear_index(&[0]).is_err());
        assert!(s.linear_index(&[0, 0, 0]).is_err());
    }

    #[test]
    fn scalar_like_shape() {
        let s = Shape::new(vec![1]).unwrap();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.linear_index(&[0]).unwrap(), 0);
    }
}
