//! Bit-level sparsity statistics (Fig. 2 of the paper).

use dbpim_csd::{CsdWord, OperandWidth};
use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Bit width of the quantized *input-feature* values the bit-column
/// statistics are computed over, and the default weight width of
/// [`WeightBitStats::from_values`].
pub const BIT_WIDTH: u32 = 8;

/// Bit-level sparsity statistics of a quantized weight tensor.
///
/// The three ratios correspond to the three bar groups of Fig. 2(a):
/// `Ori_Zero` (plain binary), `CSD_Zero` (after CSD recoding) and — once the
/// FTA approximation has been applied to the tensor — "Ours".
///
/// The plain-binary statistic counts the non-zero bits of the *magnitude*
/// (sign-magnitude convention): bit-serial PIM datapaths decompose an INT8
/// multiplication into `|W|`-bit by `|I|`-bit partial products plus a sign,
/// so a weight of `-1` contributes one effectual bit, not eight.
///
/// # Examples
///
/// ```
/// use dbpim_tensor::{Tensor, stats::WeightBitStats};
///
/// let w = Tensor::from_vec(vec![0i8, 1, -2, 127], vec![4])?;
/// let s = WeightBitStats::from_values(w.data());
/// assert!(s.binary_zero_ratio() > 0.5);
/// assert!(s.csd_zero_ratio() >= s.binary_zero_ratio());
/// # Ok::<(), dbpim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightBitStats {
    bit_width: u32,
    total_values: usize,
    zero_values: usize,
    binary_nonzero_bits: u64,
    csd_nonzero_bits: u64,
}

impl WeightBitStats {
    /// Computes statistics over a slice of INT8 values.
    #[must_use]
    pub fn from_values(values: &[i8]) -> Self {
        let wide: Vec<i32> = values.iter().map(|&v| i32::from(v)).collect();
        Self::from_wide_values(&wide, OperandWidth::Int8)
    }

    /// Computes statistics over width-generic quantized values.
    ///
    /// Values are expected to lie in `width`'s two's-complement range; the
    /// statistics count the non-zero magnitude bits and the non-zero
    /// canonical signed digits over `width.bits()` positions per value.
    #[must_use]
    pub fn from_wide_values(values: &[i32], width: OperandWidth) -> Self {
        let mut binary = 0u64;
        let mut csd = 0u64;
        let mut zero_values = 0usize;
        for &v in values {
            if v == 0 {
                zero_values += 1;
            }
            binary += u64::from(v.unsigned_abs().count_ones());
            csd += u64::from(dbpim_csd::phi(v));
        }
        Self {
            bit_width: width.bits(),
            total_values: values.len(),
            zero_values,
            binary_nonzero_bits: binary,
            csd_nonzero_bits: csd,
        }
    }

    /// Computes statistics over an INT8 tensor.
    #[must_use]
    pub fn from_tensor(tensor: &Tensor<i8>) -> Self {
        Self::from_values(tensor.data())
    }

    /// Merges statistics from another set of values (e.g. another layer).
    /// Both sets must cover the same bit width for the ratios to stay
    /// meaningful; the merged statistics keep `self`'s width.
    #[must_use]
    pub fn merge(self, other: Self) -> Self {
        Self {
            bit_width: self.bit_width,
            total_values: self.total_values + other.total_values,
            zero_values: self.zero_values + other.zero_values,
            binary_nonzero_bits: self.binary_nonzero_bits + other.binary_nonzero_bits,
            csd_nonzero_bits: self.csd_nonzero_bits + other.csd_nonzero_bits,
        }
    }

    /// Number of quantized values covered.
    #[must_use]
    pub fn total_values(&self) -> usize {
        self.total_values
    }

    /// The per-value bit width the statistics were computed over.
    #[must_use]
    pub fn bit_width(&self) -> u32 {
        self.bit_width
    }

    /// Total number of bit positions covered (`values * bit_width`).
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.total_values as u64 * u64::from(self.bit_width)
    }

    /// Fraction of values that are exactly zero (value-level sparsity).
    #[must_use]
    pub fn zero_value_ratio(&self) -> f64 {
        ratio(self.zero_values as u64, self.total_values as u64)
    }

    /// Fraction of zero bits under the plain two's-complement encoding
    /// ("Ori_Zero" in Fig. 2(a)).
    #[must_use]
    pub fn binary_zero_ratio(&self) -> f64 {
        1.0 - ratio(self.binary_nonzero_bits, self.total_bits())
    }

    /// Fraction of zero digits under CSD recoding ("CSD_Zero" in Fig. 2(a)).
    #[must_use]
    pub fn csd_zero_ratio(&self) -> f64 {
        1.0 - ratio(self.csd_nonzero_bits, self.total_bits())
    }

    /// Average number of non-zero CSD digits per value (average φ).
    #[must_use]
    pub fn mean_phi(&self) -> f64 {
        ratio(self.csd_nonzero_bits, self.total_values as u64)
    }
}

/// Histogram of φ (non-zero CSD digit count) over a set of INT8 values.
///
/// Index `k` holds the number of values with exactly `k` non-zero digits;
/// INT8 values never exceed φ = 4.
#[must_use]
pub fn phi_histogram(values: &[i8]) -> [usize; 5] {
    let mut hist = [0usize; 5];
    for &v in values {
        let phi = CsdWord::from_i8(v).nonzero_digits() as usize;
        hist[phi.min(4)] += 1;
    }
    hist
}

/// The mode (most frequent value) of φ over a set of INT8 values, used by the
/// FTA algorithm's threshold selection. Ties resolve to the smaller φ.
#[must_use]
pub fn phi_mode(values: &[i8]) -> u32 {
    let hist = phi_histogram(values);
    let mut best = 0usize;
    for (phi, &count) in hist.iter().enumerate() {
        if count > hist[best] {
            best = phi;
        }
    }
    best as u32
}

/// Block-wise zero bit-column statistics of input features (Fig. 2(b)).
///
/// Input features are processed bit-serially in groups of `group_size`
/// features. For every group and every bit position (column), the column can
/// be skipped by the IPU when *all* `group_size` features have a zero at that
/// bit. The returned ratio is `skippable columns / total columns`.
///
/// Activations are expected to be non-negative (post-ReLU, affine-quantized
/// with zero point at the minimum), matching the paper's input encoding.
///
/// # Examples
///
/// ```
/// use dbpim_tensor::stats::zero_bit_column_ratio;
///
/// // All features zero: every column of every group is skippable.
/// assert_eq!(zero_bit_column_ratio(&[0; 32], 8), 1.0);
/// // All-ones features: no column is skippable.
/// assert!(zero_bit_column_ratio(&[-1i8; 32], 8) < 1e-9);
/// ```
#[must_use]
pub fn zero_bit_column_ratio(values: &[i8], group_size: usize) -> f64 {
    assert!(group_size > 0, "group size must be non-zero");
    if values.is_empty() {
        return 1.0;
    }
    let mut zero_columns = 0u64;
    let mut total_columns = 0u64;
    for group in values.chunks(group_size) {
        for bit in 0..BIT_WIDTH {
            total_columns += 1;
            let all_zero = group.iter().all(|&v| (v as u8) & (1 << bit) == 0);
            if all_zero {
                zero_columns += 1;
            }
        }
    }
    ratio(zero_columns, total_columns)
}

/// Per-bit-position zero-column counts for a group size, exposed for the
/// IPU model and for detailed Fig. 2(b) style breakdowns.
#[must_use]
pub fn zero_bit_column_profile(values: &[i8], group_size: usize) -> [f64; BIT_WIDTH as usize] {
    assert!(group_size > 0, "group size must be non-zero");
    let mut zero = [0u64; BIT_WIDTH as usize];
    let mut groups = 0u64;
    for group in values.chunks(group_size) {
        groups += 1;
        for (bit, z) in zero.iter_mut().enumerate() {
            if group.iter().all(|&v| (v as u8) & (1 << bit) == 0) {
                *z += 1;
            }
        }
    }
    let mut out = [0.0; BIT_WIDTH as usize];
    for (o, &z) in out.iter_mut().zip(zero.iter()) {
        *o = ratio(z, groups);
    }
    out
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantizedTensor;
    use crate::random::{Distribution, TensorGenerator};

    #[test]
    fn csd_zero_ratio_is_at_least_binary_for_realistic_weights() {
        let mut g = TensorGenerator::new(11);
        let w = g.weight_tensor(vec![64, 3, 3, 3]).unwrap();
        let q = QuantizedTensor::quantize_per_channel(&w, 0);
        let s = WeightBitStats::from_tensor(q.values());
        assert!(s.csd_zero_ratio() >= s.binary_zero_ratio());
        // Fig. 2(a): realistic weights show at least ~60 % zero bits.
        assert!(s.binary_zero_ratio() > 0.6, "binary zero ratio {}", s.binary_zero_ratio());
    }

    #[test]
    fn wide_stats_agree_with_the_int8_path_and_scale_with_width() {
        let values: Vec<i8> = (-60..=60).map(|v| (v * 2) as i8).collect();
        let wide: Vec<i32> = values.iter().map(|&v| i32::from(v)).collect();
        let narrow = WeightBitStats::from_values(&values);
        let at8 = WeightBitStats::from_wide_values(&wide, OperandWidth::Int8);
        assert_eq!(narrow, at8);
        assert_eq!(narrow.bit_width(), 8);

        // The same values over a wider word have more zero positions.
        let at16 = WeightBitStats::from_wide_values(&wide, OperandWidth::Int16);
        assert_eq!(at16.total_bits(), wide.len() as u64 * 16);
        assert!(at16.csd_zero_ratio() > at8.csd_zero_ratio());
        assert_eq!(at16.mean_phi(), at8.mean_phi());
    }

    #[test]
    fn all_zero_tensor_is_fully_sparse() {
        let s = WeightBitStats::from_values(&[0i8; 100]);
        assert_eq!(s.binary_zero_ratio(), 1.0);
        assert_eq!(s.csd_zero_ratio(), 1.0);
        assert_eq!(s.zero_value_ratio(), 1.0);
        assert_eq!(s.mean_phi(), 0.0);
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = WeightBitStats::from_values(&[1i8, 2, 3]);
        let b = WeightBitStats::from_values(&[0i8, -1]);
        let merged = a.merge(b);
        assert_eq!(merged.total_values(), 5);
        let direct = WeightBitStats::from_values(&[1i8, 2, 3, 0, -1]);
        assert!((merged.csd_zero_ratio() - direct.csd_zero_ratio()).abs() < 1e-12);
    }

    #[test]
    fn phi_histogram_sums_to_len() {
        let values: Vec<i8> = (-60..60).collect();
        let hist = phi_histogram(&values);
        assert_eq!(hist.iter().sum::<usize>(), values.len());
        assert_eq!(hist[0], 1); // only the value 0
    }

    #[test]
    fn phi_mode_prefers_smaller_on_tie() {
        // Values with phi 1 and phi 2 in equal numbers -> mode 1.
        let values = [1i8, 2, 3, 5]; // phi: 1, 1, 2, 2
        assert_eq!(phi_mode(&values), 1);
    }

    #[test]
    fn phi_mode_of_typical_weights_is_one_or_two() {
        let mut g = TensorGenerator::new(13);
        let w = g.weight_tensor(vec![128, 64, 3, 3]).unwrap();
        let q = QuantizedTensor::quantize_per_channel(&w, 0);
        let mode = phi_mode(q.values().data());
        assert!(mode <= 2, "mode {mode} unexpectedly high");
    }

    #[test]
    fn zero_bit_columns_increase_with_smaller_groups() {
        let mut g = TensorGenerator::new(17);
        let act = g.tensor(vec![4096], Distribution::Relu { zero_prob: 0.5, std: 1.0 }).unwrap();
        let (lo, hi) = act.min_max();
        let params = crate::quant::QuantParams::affine_from_range(lo, hi);
        let q = params.quantize_tensor(&act);
        let r1 = zero_bit_column_ratio(q.data(), 1);
        let r8 = zero_bit_column_ratio(q.data(), 8);
        let r16 = zero_bit_column_ratio(q.data(), 16);
        assert!(r1 >= r8 && r8 >= r16, "ratios not monotone: {r1} {r8} {r16}");
        assert!(r8 > 0.1, "group-of-8 ratio unexpectedly low: {r8}");
    }

    #[test]
    fn zero_bit_column_profile_matches_ratio() {
        let values: Vec<i8> = (0..128).map(|i| (i % 7) as i8).collect();
        let profile = zero_bit_column_profile(&values, 8);
        let mean: f64 = profile.iter().sum::<f64>() / profile.len() as f64;
        let ratio = zero_bit_column_ratio(&values, 8);
        assert!((mean - ratio).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_size_panics() {
        let _ = zero_bit_column_ratio(&[1i8], 0);
    }
}
