//! Dense row-major tensor.

use serde::{Deserialize, Serialize};

use crate::error::TensorError;
use crate::shape::Shape;

/// A dense, row-major, owned tensor.
///
/// The element type is generic; the DB-PIM pipeline uses `f32` for reference
/// models, `i8` for quantized weights/activations and `i32` for accumulators.
///
/// # Examples
///
/// ```
/// use dbpim_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1i8, 2, 3, 4, 5, 6], vec![2, 3])?;
/// assert_eq!(t.get(&[1, 2])?, 6);
/// let doubled = t.map(|x| x * 2);
/// assert_eq!(doubled.get(&[0, 1])?, 4);
/// # Ok::<(), dbpim_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T> Tensor<T> {
    /// Creates a tensor from a flat data vector and dimension sizes.
    ///
    /// # Errors
    ///
    /// * [`TensorError::EmptyShape`] for an empty or zero-sized shape.
    /// * [`TensorError::ShapeMismatch`] when `data.len()` does not equal the
    ///   shape's element count.
    pub fn from_vec(data: Vec<T>, dims: Vec<usize>) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if data.len() != shape.numel() {
            return Err(TensorError::ShapeMismatch {
                data_len: data.len(),
                expected: shape.numel(),
            });
        }
        Ok(Self { shape, data })
    }

    /// The tensor's shape as a slice of dimension sizes.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor's [`Shape`].
    #[must_use]
    pub fn shape_ref(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Flat element storage, row-major.
    #[must_use]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat element storage, row-major.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat storage.
    #[must_use]
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Returns a tensor with the same data reinterpreted under a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the element counts differ.
    pub fn reshaped(self, dims: Vec<usize>) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if shape.numel() != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                data_len: self.data.len(),
                expected: shape.numel(),
            });
        }
        Ok(Self { shape, data: self.data })
    }

    /// Applies `f` to every element, producing a new tensor of the same shape.
    #[must_use]
    pub fn map<U, F: FnMut(&T) -> U>(&self, f: F) -> Tensor<U> {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(f).collect() }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] when the shapes differ.
    pub fn zip_map<U, V, F>(&self, other: &Tensor<U>, mut f: F) -> Result<Tensor<V>, TensorError>
    where
        F: FnMut(&T, &U) -> V,
    {
        if self.shape() != other.shape() {
            return Err(TensorError::IncompatibleShapes {
                left: self.shape().to_vec(),
                right: other.shape().to_vec(),
            });
        }
        let data = self.data.iter().zip(other.data()).map(|(a, b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }
}

impl<T: Copy> Tensor<T> {
    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn get(&self, index: &[usize]) -> Result<T, TensorError> {
        Ok(self.data[self.shape.linear_index(index)?])
    }

    /// Writes an element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for an invalid index.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<(), TensorError> {
        let offset = self.shape.linear_index(index)?;
        self.data[offset] = value;
        Ok(())
    }
}

impl<T: Clone + Default> Tensor<T> {
    /// Creates a tensor of the given shape filled with `T::default()`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn zeros(dims: Vec<usize>) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        Ok(Self { data: vec![T::default(); shape.numel()], shape })
    }
}

impl<T: Clone> Tensor<T> {
    /// Creates a tensor of the given shape filled with copies of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyShape`] for an invalid shape.
    pub fn filled(value: T, dims: Vec<usize>) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        Ok(Self { data: vec![value; shape.numel()], shape })
    }
}

impl Tensor<f32> {
    /// Mean of all elements.
    #[must_use]
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Minimum and maximum element values.
    #[must_use]
    pub fn min_max(&self) -> (f32, f32) {
        self.data
            .iter()
            .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)))
    }

    /// Largest absolute element value.
    #[must_use]
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Mean squared error against another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] when the shapes differ.
    pub fn mse(&self, other: &Self) -> Result<f32, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::IncompatibleShapes {
                left: self.shape().to_vec(),
                right: other.shape().to_vec(),
            });
        }
        let sum: f32 = self.data.iter().zip(other.data()).map(|(a, b)| (a - b) * (a - b)).sum();
        Ok(sum / self.data.len() as f32)
    }

    /// Signal-to-quantization-noise ratio in dB of `other` relative to `self`
    /// (treating `self` as the reference signal).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] when the shapes differ.
    pub fn sqnr_db(&self, other: &Self) -> Result<f32, TensorError> {
        let noise = self.mse(other)?;
        let signal: f32 = self.data.iter().map(|a| a * a).sum::<f32>() / self.data.len() as f32;
        if noise <= f32::EPSILON {
            return Ok(f32::INFINITY);
        }
        Ok(10.0 * (signal / noise).log10())
    }
}

impl Tensor<i8> {
    /// Fraction of elements equal to zero (value-level sparsity).
    #[must_use]
    pub fn zero_value_ratio(&self) -> f64 {
        let zeros = self.data.iter().filter(|&&v| v == 0).count();
        zeros as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        let err = Tensor::from_vec(vec![1, 2, 3], vec![2, 2]).unwrap_err();
        assert_eq!(err, TensorError::ShapeMismatch { data_len: 3, expected: 4 });
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::<i32>::zeros(vec![2, 3]).unwrap();
        t.set(&[1, 2], 42).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 42);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).collect(), vec![3, 4]).unwrap();
        let r = t.clone().reshaped(vec![2, 6]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshaped(vec![5, 5]).is_err());
    }

    #[test]
    fn zip_map_requires_same_shape() {
        let a = Tensor::from_vec(vec![1, 2, 3, 4], vec![2, 2]).unwrap();
        let b = Tensor::from_vec(vec![10, 20, 30, 40], vec![2, 2]).unwrap();
        let sum = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(sum.data(), &[11, 22, 33, 44]);

        let c = Tensor::from_vec(vec![1, 2], vec![2]).unwrap();
        assert!(a.zip_map(&c, |x, y| x + y).is_err());
    }

    #[test]
    fn float_statistics() {
        let t = Tensor::from_vec(vec![-1.0f32, 0.0, 3.0, 2.0], vec![4]).unwrap();
        assert_eq!(t.min_max(), (-1.0, 3.0));
        assert_eq!(t.abs_max(), 3.0);
        assert!((t.mean() - 1.0).abs() < 1e-6);
        assert_eq!(t.mse(&t).unwrap(), 0.0);
        assert_eq!(t.sqnr_db(&t).unwrap(), f32::INFINITY);
    }

    #[test]
    fn zero_value_ratio_counts_zeros() {
        let t = Tensor::from_vec(vec![0i8, 1, 0, -3], vec![4]).unwrap();
        assert!((t.zero_value_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn filled_and_map() {
        let t = Tensor::filled(7i8, vec![2, 2]).unwrap();
        let doubled = t.map(|x| i32::from(*x) * 2);
        assert!(doubled.data().iter().all(|&v| v == 14));
    }
}
