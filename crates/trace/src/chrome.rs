//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`) and
//! the human-readable per-phase summary table.
//!
//! The JSON uses the trace-event "object format": a top-level
//! `traceEvents` array of complete (`"ph":"X"`) events with microsecond
//! `ts`/`dur`, one `pid` per process lane and each lane's dense thread
//! ids as `tid`. Every lane leads with `process_name`/`thread_name`
//! metadata (`"ph":"M"`) events so Perfetto labels it, and span arguments
//! land in each event's `args` object, so Perfetto shows `layer = 3` on
//! hover. [`ChromeTrace::render_lanes`] merges several processes — the
//! fleet driver and its remote daemons — into one document, provided the
//! caller has already shifted every lane's timestamps onto one clock.

use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::collector::{SpanRecord, TraceSpan};

/// One process's worth of spans in a merged multi-process trace. The
/// span timestamps must already be expressed on the merged document's
/// common clock (the caller applies epoch/offset alignment).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessLane {
    /// The `pid` Perfetto groups this lane's events under — the real OS
    /// process id of the traced process.
    pub pid: u64,
    /// Human-readable lane label (`dbpim-fleet`, `dbpim-served :7641`).
    pub name: String,
    /// The lane's spans, timestamps on the common clock.
    pub spans: Vec<TraceSpan>,
}

/// Builds Chrome trace-event JSON from collected spans.
#[derive(Debug, Clone, Copy)]
pub struct ChromeTrace;

impl ChromeTrace {
    /// Renders the spans of the current process as a complete Chrome
    /// trace-event JSON document (one lane under the real process id).
    #[must_use]
    pub fn render(events: &[SpanRecord]) -> String {
        let lane = ProcessLane {
            pid: u64::from(std::process::id()),
            name: process_name(),
            spans: events.iter().map(TraceSpan::from).collect(),
        };
        Self::render_lanes(std::slice::from_ref(&lane))
    }

    /// Renders several process lanes as one merged Chrome trace-event
    /// JSON document. Each lane contributes a `process_name` metadata
    /// event, a `thread_name` metadata event per distinct thread, and its
    /// spans as complete events under the lane's `pid`.
    #[must_use]
    pub fn render_lanes(lanes: &[ProcessLane]) -> String {
        let mut trace_events: Vec<Value> = Vec::new();
        for lane in lanes {
            trace_events.push(metadata_value("process_name", lane.pid, 0, &lane.name));
            let threads: std::collections::BTreeSet<u64> =
                lane.spans.iter().map(|span| span.thread).collect();
            for thread in threads {
                trace_events.push(metadata_value(
                    "thread_name",
                    lane.pid,
                    thread,
                    &format!("thread {thread}"),
                ));
            }
            trace_events.extend(lane.spans.iter().map(|span| event_value(span, lane.pid)));
        }
        let document = Value::Map(vec![
            ("traceEvents".to_string(), Value::Seq(trace_events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ]);
        serde_json::to_string(&document).expect("the value model always serializes")
    }
}

/// The current executable's file stem, the conventional Perfetto lane
/// label for a single-process trace.
pub(crate) fn process_name() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|path| path.file_stem().map(|stem| stem.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "dbpim".to_string())
}

/// One `ph: "M"` metadata event (`process_name` / `thread_name`).
fn metadata_value(name: &str, pid: u64, tid: u64, label: &str) -> Value {
    Value::Map(vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::U64(pid)),
        ("tid".to_string(), Value::U64(tid)),
        ("args".to_string(), Value::Map(vec![("name".to_string(), Value::Str(label.to_string()))])),
    ])
}

/// One span as a complete (`ph: "X"`) trace event. The span's id rides in
/// `args.span` so cross-process parent references (`parent_span` args)
/// can be followed inside the merged document.
fn event_value(span: &TraceSpan, pid: u64) -> Value {
    let mut args: Vec<(String, Value)> =
        span.args.iter().map(|(key, value)| (key.clone(), Value::Str(value.clone()))).collect();
    if span.id != 0 {
        args.push(("span".to_string(), Value::U64(span.id)));
    }
    Value::Map(vec![
        ("name".to_string(), Value::Str(span.name.clone())),
        ("cat".to_string(), Value::Str("dbpim".to_string())),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("ts".to_string(), Value::U64(span.start_micros)),
        ("dur".to_string(), Value::U64(span.duration_micros)),
        ("pid".to_string(), Value::U64(pid)),
        ("tid".to_string(), Value::U64(span.thread)),
        ("args".to_string(), Value::Map(args)),
    ])
}

/// Aggregate statistics of every span sharing one name — one row of the
/// per-phase summary table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// The span name (`pipeline.quantize`, `sim.layer`, …).
    pub name: String,
    /// Spans recorded under this name.
    pub count: u64,
    /// Total time across all spans, in microseconds.
    pub total_micros: u64,
    /// Mean span duration, in microseconds.
    pub mean_micros: u64,
    /// Longest span, in microseconds.
    pub max_micros: u64,
}

/// Folds spans into per-name [`PhaseSummary`] rows, ordered by descending
/// total time (ties broken by name so the table is deterministic).
#[must_use]
pub fn phase_summary(events: &[SpanRecord]) -> Vec<PhaseSummary> {
    let mut by_name: std::collections::BTreeMap<&'static str, PhaseSummary> =
        std::collections::BTreeMap::new();
    for event in events {
        let row = by_name.entry(event.name).or_insert_with(|| PhaseSummary {
            name: event.name.to_string(),
            count: 0,
            total_micros: 0,
            mean_micros: 0,
            max_micros: 0,
        });
        row.count += 1;
        row.total_micros = row.total_micros.saturating_add(event.duration_micros);
        row.max_micros = row.max_micros.max(event.duration_micros);
    }
    let mut rows: Vec<PhaseSummary> = by_name.into_values().collect();
    for row in &mut rows {
        row.mean_micros = row.total_micros.checked_div(row.count).unwrap_or(0);
    }
    rows.sort_by(|a, b| b.total_micros.cmp(&a.total_micros).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Renders the phase summary as an aligned text table (for stderr or
/// EXPERIMENTS.md; never stdout of a deterministic report).
#[must_use]
pub fn render_phase_table(rows: &[PhaseSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
        "span", "count", "total ms", "mean µs", "max µs"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12.3} {:>12} {:>12}\n",
            row.name,
            row.count,
            row.total_micros as f64 / 1000.0,
            row.mean_micros,
            row.max_micros,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        name: &'static str,
        thread: u64,
        start: u64,
        duration: u64,
        args: Vec<(&'static str, String)>,
    ) -> SpanRecord {
        SpanRecord {
            id: 7,
            name,
            thread,
            depth: 0,
            start_micros: start,
            duration_micros: duration,
            args,
        }
    }

    fn events_of(json: &str) -> Vec<Value> {
        let value: Value = serde_json::from_str(json).expect("well-formed JSON");
        let entries = value.as_map().expect("object document").to_vec();
        serde::value::get_field(&entries, "traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array")
            .to_vec()
    }

    fn field<'a>(event: &'a Value, name: &str) -> Option<&'a Value> {
        serde::value::get_field(event.as_map().expect("event object"), name)
    }

    // Parsed JSON integers come back as `I64` when they fit; rendered ones
    // are `U64`. Tests compare through this unifier.
    fn as_num(value: &Value) -> Option<u64> {
        match value {
            Value::I64(i) => u64::try_from(*i).ok(),
            Value::U64(u) => Some(*u),
            _ => None,
        }
    }

    #[test]
    fn chrome_json_is_wellformed_and_parses_back() {
        let events = vec![
            record("pipeline.quantize", 0, 10, 100, vec![("model", "resnet18".to_string())]),
            record("sim.layer", 1, 120, 30, Vec::new()),
        ];
        let json = ChromeTrace::render(&events);
        let trace_events = events_of(&json);
        // One process_name, two thread_name metadata events, two spans.
        assert_eq!(trace_events.len(), 5);
        let metadata: Vec<&Value> = trace_events
            .iter()
            .filter(|e| field(e, "ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(metadata.len(), 3);
        assert_eq!(field(metadata[0], "name").and_then(Value::as_str), Some("process_name"));
        let spans: Vec<&Value> = trace_events
            .iter()
            .filter(|e| field(e, "ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        let first = spans[0];
        assert_eq!(field(first, "name").and_then(Value::as_str), Some("pipeline.quantize"));
        // The real process id replaces the historical hardcoded `pid: 1`.
        assert_eq!(field(first, "pid").and_then(as_num), Some(u64::from(std::process::id())));
        let args = field(first, "args").and_then(Value::as_map).expect("args");
        assert_eq!(
            serde::value::get_field(args, "model").and_then(Value::as_str),
            Some("resnet18")
        );
        // The span id rides along for cross-process correlation.
        assert_eq!(serde::value::get_field(args, "span").and_then(as_num), Some(7));
    }

    #[test]
    fn merged_lanes_keep_their_pids_and_labels() {
        let driver = ProcessLane {
            pid: 100,
            name: "dbpim-fleet".to_string(),
            spans: vec![(&record("fleet.point", 0, 50, 400, Vec::new())).into()],
        };
        let daemon = ProcessLane {
            pid: 200,
            name: "dbpim-served 127.0.0.1:7641".to_string(),
            spans: vec![(&record("serve.request", 3, 120, 200, Vec::new())).into()],
        };
        let json = ChromeTrace::render_lanes(&[driver, daemon]);
        let trace_events = events_of(&json);
        // Per lane: process_name + one thread_name + one span.
        assert_eq!(trace_events.len(), 6);
        let pids: std::collections::BTreeSet<u64> = trace_events
            .iter()
            .filter(|e| field(e, "ph").and_then(Value::as_str) == Some("X"))
            .filter_map(|e| field(e, "pid").and_then(as_num))
            .collect();
        assert_eq!(pids, [100, 200].into_iter().collect());
        let labels: Vec<&str> = trace_events
            .iter()
            .filter(|e| field(e, "name").and_then(Value::as_str) == Some("process_name"))
            .filter_map(|e| {
                field(e, "args")
                    .and_then(Value::as_map)
                    .and_then(|args| serde::value::get_field(args, "name"))
                    .and_then(Value::as_str)
            })
            .collect();
        assert_eq!(labels, vec!["dbpim-fleet", "dbpim-served 127.0.0.1:7641"]);
        let daemon_span = trace_events
            .iter()
            .find(|e| field(e, "name").and_then(Value::as_str) == Some("serve.request"))
            .expect("daemon span present");
        assert_eq!(field(daemon_span, "tid").and_then(as_num), Some(3));
    }

    #[test]
    fn phase_summary_aggregates_and_orders_by_total() {
        let events = vec![
            record("b.small", 0, 0, 10, Vec::new()),
            record("a.big", 0, 10, 70, Vec::new()),
            record("b.small", 0, 80, 20, Vec::new()),
        ];
        let rows = phase_summary(&events);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "a.big");
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[0].total_micros, 70);
        assert_eq!(rows[1].name, "b.small");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_micros, 30);
        assert_eq!(rows[1].mean_micros, 15);
        assert_eq!(rows[1].max_micros, 20);

        let table = render_phase_table(&rows);
        assert!(table.contains("a.big"), "{table}");
        assert!(table.lines().count() == 3, "{table}");
    }
}
