//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`) and
//! the human-readable per-phase summary table.
//!
//! The JSON uses the trace-event "object format": a top-level
//! `traceEvents` array of complete (`"ph":"X"`) events with microsecond
//! `ts`/`dur`, one `pid` for the process and the collector's dense thread
//! ids as `tid`. Span arguments land in each event's `args` object, so
//! Perfetto shows `layer = 3` on hover.

use serde::value::Value;
use serde::{Deserialize, Serialize};

use crate::collector::SpanRecord;

/// Builds Chrome trace-event JSON from collected spans.
#[derive(Debug, Clone, Copy)]
pub struct ChromeTrace;

impl ChromeTrace {
    /// Renders the spans as a complete Chrome trace-event JSON document.
    #[must_use]
    pub fn render(events: &[SpanRecord]) -> String {
        let trace_events: Vec<Value> = events.iter().map(Self::event_value).collect();
        let document = Value::Map(vec![
            ("traceEvents".to_string(), Value::Seq(trace_events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ]);
        serde_json::to_string(&document).expect("the value model always serializes")
    }

    /// One span as a complete (`ph: "X"`) trace event.
    fn event_value(record: &SpanRecord) -> Value {
        let args: Vec<(String, Value)> = record
            .args
            .iter()
            .map(|(key, value)| ((*key).to_string(), Value::Str(value.clone())))
            .collect();
        Value::Map(vec![
            ("name".to_string(), Value::Str(record.name.to_string())),
            ("cat".to_string(), Value::Str("dbpim".to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::U64(record.start_micros)),
            ("dur".to_string(), Value::U64(record.duration_micros)),
            ("pid".to_string(), Value::U64(1)),
            ("tid".to_string(), Value::U64(record.thread)),
            ("args".to_string(), Value::Map(args)),
        ])
    }
}

/// Aggregate statistics of every span sharing one name — one row of the
/// per-phase summary table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// The span name (`pipeline.quantize`, `sim.layer`, …).
    pub name: String,
    /// Spans recorded under this name.
    pub count: u64,
    /// Total time across all spans, in microseconds.
    pub total_micros: u64,
    /// Mean span duration, in microseconds.
    pub mean_micros: u64,
    /// Longest span, in microseconds.
    pub max_micros: u64,
}

/// Folds spans into per-name [`PhaseSummary`] rows, ordered by descending
/// total time (ties broken by name so the table is deterministic).
#[must_use]
pub fn phase_summary(events: &[SpanRecord]) -> Vec<PhaseSummary> {
    let mut by_name: std::collections::BTreeMap<&'static str, PhaseSummary> =
        std::collections::BTreeMap::new();
    for event in events {
        let row = by_name.entry(event.name).or_insert_with(|| PhaseSummary {
            name: event.name.to_string(),
            count: 0,
            total_micros: 0,
            mean_micros: 0,
            max_micros: 0,
        });
        row.count += 1;
        row.total_micros = row.total_micros.saturating_add(event.duration_micros);
        row.max_micros = row.max_micros.max(event.duration_micros);
    }
    let mut rows: Vec<PhaseSummary> = by_name.into_values().collect();
    for row in &mut rows {
        row.mean_micros = row.total_micros.checked_div(row.count).unwrap_or(0);
    }
    rows.sort_by(|a, b| b.total_micros.cmp(&a.total_micros).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Renders the phase summary as an aligned text table (for stderr or
/// EXPERIMENTS.md; never stdout of a deterministic report).
#[must_use]
pub fn render_phase_table(rows: &[PhaseSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>12} {:>12} {:>12}\n",
        "span", "count", "total ms", "mean µs", "max µs"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<28} {:>8} {:>12.3} {:>12} {:>12}\n",
            row.name,
            row.count,
            row.total_micros as f64 / 1000.0,
            row.mean_micros,
            row.max_micros,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        name: &'static str,
        thread: u64,
        start: u64,
        duration: u64,
        args: Vec<(&'static str, String)>,
    ) -> SpanRecord {
        SpanRecord { name, thread, depth: 0, start_micros: start, duration_micros: duration, args }
    }

    #[test]
    fn chrome_json_is_wellformed_and_parses_back() {
        let events = vec![
            record("pipeline.quantize", 0, 10, 100, vec![("model", "resnet18".to_string())]),
            record("sim.layer", 1, 120, 30, Vec::new()),
        ];
        let json = ChromeTrace::render(&events);
        let value: Value = serde_json::from_str(&json).expect("well-formed JSON");
        let entries = value.as_map().expect("object document");
        let trace_events = serde::value::get_field(entries, "traceEvents")
            .and_then(Value::as_seq)
            .expect("traceEvents array");
        assert_eq!(trace_events.len(), 2);
        let first = trace_events[0].as_map().expect("event object");
        assert_eq!(serde::value::get_field(first, "ph").and_then(Value::as_str), Some("X"));
        assert_eq!(
            serde::value::get_field(first, "name").and_then(Value::as_str),
            Some("pipeline.quantize")
        );
        let args = serde::value::get_field(first, "args").and_then(Value::as_map).expect("args");
        assert_eq!(
            serde::value::get_field(args, "model").and_then(Value::as_str),
            Some("resnet18")
        );
    }

    #[test]
    fn phase_summary_aggregates_and_orders_by_total() {
        let events = vec![
            record("b.small", 0, 0, 10, Vec::new()),
            record("a.big", 0, 10, 70, Vec::new()),
            record("b.small", 0, 80, 20, Vec::new()),
        ];
        let rows = phase_summary(&events);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "a.big");
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[0].total_micros, 70);
        assert_eq!(rows[1].name, "b.small");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_micros, 30);
        assert_eq!(rows[1].mean_micros, 15);
        assert_eq!(rows[1].max_micros, 20);

        let table = render_phase_table(&rows);
        assert!(table.contains("a.big"), "{table}");
        assert!(table.lines().count() == 3, "{table}");
    }
}
