//! The span collector: thread-safe, thread-id-tagged nested spans with
//! monotonic timestamps, a bounded ring buffer, and a global
//! install/uninstall API whose disabled fast path is one relaxed atomic
//! load.
//!
//! Spans are recorded *on guard drop* (one ring-buffer push per completed
//! span), so opening a span costs nothing but an `Instant::now()` and a
//! thread-local depth bump while a collector is installed — and nothing at
//! all while none is. Per-tile kernel events go through [`kernel_span`],
//! which additionally applies the collector's sampling knob so the
//! bit-plane hot path records one span in N instead of millions.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::chrome::ChromeTrace;

/// Default ring-buffer capacity: enough for a full zoo sweep's phase and
/// per-layer spans without unbounded growth under per-request serving.
pub const DEFAULT_CAPACITY: usize = 262_144;

/// Default sampling interval for [`kernel_span`]: record one per-tile
/// kernel event in this many.
pub const DEFAULT_KERNEL_SAMPLING: u64 = 64;

/// One completed span, as stored in the collector's ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (monotonic, never 0 for recorded spans) —
    /// the correlation handle distributed trace contexts carry.
    pub id: u64,
    /// The span name (dot-separated taxonomy, e.g. `pipeline.quantize`).
    pub name: &'static str,
    /// Small dense id of the recording thread (stable within a process).
    pub thread: u64,
    /// Nesting depth at the time the span opened (0 = top level).
    pub depth: u32,
    /// Start offset from the collector's epoch, in microseconds.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
    /// Structured key/value arguments (`span!("x", layer = 3)`).
    pub args: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// End offset from the collector's epoch, in microseconds.
    #[must_use]
    pub fn end_micros(&self) -> u64 {
        self.start_micros + self.duration_micros
    }
}

/// An owned, serializable span — the wire form of [`SpanRecord`] used by
/// the daemon's `TraceSnapshot` response and the fleet's merged export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Process-unique span id (see [`SpanRecord::id`]).
    pub id: u64,
    /// The span name.
    pub name: String,
    /// Dense thread id within the recording process.
    pub thread: u64,
    /// Nesting depth at open time.
    pub depth: u32,
    /// Start offset from the *recording collector's* epoch, microseconds.
    pub start_micros: u64,
    /// Span duration in microseconds.
    pub duration_micros: u64,
    /// Structured key/value arguments.
    pub args: Vec<(String, String)>,
}

impl TraceSpan {
    /// End offset from the recording collector's epoch, in microseconds.
    #[must_use]
    pub fn end_micros(&self) -> u64 {
        self.start_micros + self.duration_micros
    }

    /// The value of the argument under `key`, when present.
    #[must_use]
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

impl From<&SpanRecord> for TraceSpan {
    fn from(record: &SpanRecord) -> Self {
        Self {
            id: record.id,
            name: record.name.to_string(),
            thread: record.thread,
            depth: record.depth,
            start_micros: record.start_micros,
            duration_micros: record.duration_micros,
            args: record.args.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
        }
    }
}

/// Everything one process's collector knows, drained for remote export:
/// the spans, the drop count, and the wall-clock anchor that lets a
/// merger translate the monotonic span offsets onto another clock.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CollectorSnapshot {
    /// The collector's epoch as unix time in microseconds (wall clock
    /// captured at construction, beside the monotonic epoch).
    pub epoch_unix_micros: u64,
    /// OS process id of the recording process (a Chrome-trace lane key).
    pub pid: u64,
    /// Spans evicted from the ring buffer because it was full.
    pub dropped: u64,
    /// The drained spans, oldest first.
    pub spans: Vec<TraceSpan>,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<SpanRecord>,
    dropped: u64,
}

/// The global span sink: a bounded ring buffer of [`SpanRecord`]s with a
/// monotonic epoch and a sampling knob for kernel-level events.
#[derive(Debug)]
pub struct TraceCollector {
    epoch: Instant,
    epoch_unix_micros: u64,
    capacity: usize,
    kernel_sampling: u64,
    kernel_counter: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A collector with the default capacity and kernel sampling.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A collector storing at most `capacity` completed spans; once full,
    /// the oldest span is dropped per new one (and counted).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            epoch_unix_micros: unix_micros_now(),
            capacity: capacity.max(1),
            kernel_sampling: DEFAULT_KERNEL_SAMPLING,
            kernel_counter: AtomicU64::new(0),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// The collector's epoch as unix time in microseconds — the wall-clock
    /// twin of the monotonic epoch every span offset is relative to.
    #[must_use]
    pub fn epoch_unix_micros(&self) -> u64 {
        self.epoch_unix_micros
    }

    /// Sets the kernel-event sampling interval: [`kernel_span`] records one
    /// span in `every` (1 = record all; clamped to at least 1).
    #[must_use]
    pub fn with_kernel_sampling(mut self, every: u64) -> Self {
        self.kernel_sampling = every.max(1);
        self
    }

    /// `true` when this call wins the 1-in-N kernel sampling lottery.
    fn sample_kernel(&self) -> bool {
        self.kernel_counter.fetch_add(1, Ordering::Relaxed).is_multiple_of(self.kernel_sampling)
    }

    /// Microseconds elapsed since the collector's epoch.
    fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn lock_ring(&self) -> MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.lock_ring();
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(record);
    }

    /// Copies out every stored span, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.lock_ring().events.iter().cloned().collect()
    }

    /// Spans evicted from the ring buffer because it was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock_ring().dropped
    }

    /// Discards every stored span (the drop counter survives).
    pub fn clear(&self) {
        self.lock_ring().events.clear();
    }

    /// Atomically copies out every stored span *and* clears the ring (one
    /// lock acquisition, so no span recorded concurrently is lost between
    /// snapshot and clear), packaged with the clock anchor a remote
    /// consumer needs. The drop counter is reported but survives, exactly
    /// as with [`TraceCollector::clear`].
    #[must_use]
    pub fn drain(&self) -> CollectorSnapshot {
        let mut ring = self.lock_ring();
        let spans = ring.events.iter().map(TraceSpan::from).collect();
        ring.events.clear();
        CollectorSnapshot {
            epoch_unix_micros: self.epoch_unix_micros,
            pid: u64::from(std::process::id()),
            dropped: ring.dropped,
            spans,
        }
    }

    /// Stored span count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_ring().events.len()
    }

    /// `true` when no spans are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Wall-clock "now" as unix time in microseconds (0 before the epoch,
/// which no sane host reports).
#[must_use]
pub fn unix_micros_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
}

// ------------------------------------------------------------ global state

/// Fast-path flag: `false` makes every span entry point a no-op after one
/// relaxed load. Kept in sync with `COLLECTOR` by [`install`]/[`uninstall`].
static INSTALLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Arc<TraceCollector>>> = Mutex::new(None);
/// Dense per-thread ids for trace tagging (thread 0, 1, 2, … in first-span
/// order; `std::thread::ThreadId` has no stable numeric accessor).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
/// Process-unique span ids, starting at 1 so 0 can mean "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Installs `collector` as the process-global span sink, replacing any
/// previous one.
pub fn install(collector: Arc<TraceCollector>) {
    let mut slot = COLLECTOR.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *slot = Some(collector);
    INSTALLED.store(true, Ordering::Release);
}

/// Uninstalls the global collector (if any) and returns it; spans opened
/// afterwards are no-ops.
pub fn uninstall() -> Option<Arc<TraceCollector>> {
    let mut slot = COLLECTOR.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    INSTALLED.store(false, Ordering::Release);
    slot.take()
}

/// `true` while a collector is installed — the one check every
/// instrumentation site makes before doing any work.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

fn current() -> Option<Arc<TraceCollector>> {
    if !enabled() {
        return None;
    }
    COLLECTOR.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// The currently installed collector, if any — the handle remote
/// `TraceSnapshot` handlers drain without uninstalling.
#[must_use]
pub fn collector() -> Option<Arc<TraceCollector>> {
    current()
}

// ------------------------------------------------------------------ spans

/// An open span; records itself into the collector when dropped. Obtained
/// from [`span!`], [`start_span`] or [`kernel_span`].
#[must_use = "a span measures the scope of its guard binding"]
#[derive(Debug)]
pub struct SpanGuard(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    collector: Arc<TraceCollector>,
    id: u64,
    name: &'static str,
    args: Vec<(&'static str, String)>,
    thread: u64,
    depth: u32,
    start_micros: u64,
}

impl SpanGuard {
    /// The no-op guard every entry point returns while tracing is off.
    pub fn disabled() -> Self {
        SpanGuard(None)
    }

    /// The open span's process-unique id, or `None` for a disabled guard —
    /// what a distributed trace context carries as its parent span.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|span| span.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.0.take() {
            DEPTH.with(|depth| depth.set(depth.get().saturating_sub(1)));
            // End on the same monotonic clock the start came from, so a
            // child's end can never exceed its parent's (exact nesting).
            let duration_micros = span.collector.now_micros().saturating_sub(span.start_micros);
            span.collector.push(SpanRecord {
                id: span.id,
                name: span.name,
                thread: span.thread,
                depth: span.depth,
                start_micros: span.start_micros,
                duration_micros,
                args: span.args,
            });
        }
    }
}

fn open(
    collector: Arc<TraceCollector>,
    name: &'static str,
    args: Vec<(&'static str, String)>,
) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let thread = THREAD_ID.with(|id| *id);
    let depth = DEPTH.with(|depth| {
        let current = depth.get();
        depth.set(current + 1);
        current
    });
    let start_micros = collector.now_micros();
    SpanGuard(Some(ActiveSpan { collector, id, name, args, thread, depth, start_micros }))
}

/// Opens a span on the installed collector (no-op guard when none is).
/// Prefer the [`span!`] macro, which skips argument formatting entirely
/// while tracing is off.
pub fn start_span(name: &'static str, args: Vec<(&'static str, String)>) -> SpanGuard {
    match current() {
        Some(collector) => open(collector, name, args),
        None => SpanGuard::disabled(),
    }
}

/// Opens a *sampled* kernel-level span: subject to the collector's 1-in-N
/// sampling knob, so per-tile events in the bit-plane hot path do not
/// flood the ring buffer (or pay per-event formatting).
pub fn kernel_span(name: &'static str) -> SpanGuard {
    match current() {
        Some(collector) if collector.sample_kernel() => open(collector, name, Vec::new()),
        _ => SpanGuard::disabled(),
    }
}

/// As [`kernel_span`], but attaches lazily-built args: the closure runs
/// only for the sampled 1-in-N events, so op counters on per-dispatch
/// spans cost nothing on the unsampled (or disabled) path.
pub fn kernel_span_with(
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) -> SpanGuard {
    match current() {
        Some(collector) if collector.sample_kernel() => open(collector, name, args()),
        _ => SpanGuard::disabled(),
    }
}

/// Opens a named span over the enclosing scope.
///
/// ```
/// # use dbpim_trace::span;
/// let _span = span!("compile.layer", layer = 3, name = "conv1");
/// ```
///
/// Arguments are `key = value` pairs captured with `Display` formatting —
/// and *only* when a collector is installed; the disabled path formats
/// nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::start_span($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::start_span(
                $name,
                ::std::vec![$((stringify!($key), ::std::format!("{}", $value))),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

// ------------------------------------------------------------- trace sink

/// The `--trace-out <path>` plumbing shared by every binary: installs a
/// fresh collector on construction and writes the Chrome trace-event JSON
/// on [`TraceSink::finish`].
#[derive(Debug)]
pub struct TraceSink {
    collector: Arc<TraceCollector>,
    path: PathBuf,
}

impl TraceSink {
    /// Installs a fresh default-capacity collector and remembers the
    /// output path.
    pub fn install(path: impl Into<PathBuf>) -> Self {
        let collector = Arc::new(TraceCollector::new());
        install(Arc::clone(&collector));
        Self { collector, path: path.into() }
    }

    /// Scans an argument list for `--trace-out <path>` and installs a sink
    /// when present. Unknown flags stay untouched, so this layers on the
    /// workspace's strict option parsers.
    ///
    /// # Errors
    ///
    /// Returns a message when the flag is present without a value.
    pub fn from_args(args: &[String]) -> Result<Option<Self>, String> {
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--trace-out" {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| "invalid value for `--trace-out`: missing value".to_string())?;
                return Ok(Some(Self::install(path)));
            }
            i += 1;
        }
        Ok(None)
    }

    /// The installed collector.
    #[must_use]
    pub fn collector(&self) -> &Arc<TraceCollector> {
        &self.collector
    }

    /// The output path the Chrome trace will be written to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Uninstalls the collector, writes the Chrome trace-event JSON and
    /// prints the per-phase summary table to stderr (stdout stays the
    /// deterministic report surface).
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn finish(self) -> std::io::Result<()> {
        uninstall();
        let events = self.collector.snapshot();
        std::fs::write(&self.path, ChromeTrace::render(&events))?;
        let dropped = self.collector.dropped();
        if dropped > 0 {
            eprintln!(
                "trace: {} spans -> {} ({dropped} older spans dropped; raise the capacity \
                 or sampling to keep them)",
                events.len(),
                self.path.display()
            );
        } else {
            eprintln!("trace: {} spans -> {}", events.len(), self.path.display());
        }
        eprint!("{}", crate::chrome::render_phase_table(&crate::chrome::phase_summary(&events)));
        Ok(())
    }

    /// Like [`Self::finish`], but merges `remote_lanes` — other processes'
    /// spans, timestamps already aligned to this collector's epoch — into
    /// the written document. This is how `dbpim-fleet --trace-out` folds
    /// its daemons' drained collectors under the driver's trace.
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn finish_merged(
        self,
        remote_lanes: Vec<crate::chrome::ProcessLane>,
    ) -> std::io::Result<()> {
        uninstall();
        let events = self.collector.snapshot();
        let mut lanes = Vec::with_capacity(remote_lanes.len() + 1);
        lanes.push(crate::chrome::ProcessLane {
            pid: u64::from(std::process::id()),
            name: crate::chrome::process_name(),
            spans: events.iter().map(TraceSpan::from).collect(),
        });
        lanes.extend(remote_lanes);
        std::fs::write(&self.path, ChromeTrace::render_lanes(&lanes))?;
        let remote_spans: usize = lanes[1..].iter().map(|lane| lane.spans.len()).sum();
        eprintln!(
            "trace: {} local + {remote_spans} remote spans across {} processes -> {}",
            events.len(),
            lanes.len(),
            self.path.display()
        );
        eprint!("{}", crate::chrome::render_phase_table(&crate::chrome::phase_summary(&events)));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-collector tests share one process; serialize them so installs
    // do not race.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_no_ops_and_record_nothing() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        uninstall();
        assert!(!enabled());
        {
            let _a = span!("never.recorded");
            let _b = span!("never.either", key = 42);
            let _c = kernel_span("kernel.never");
        }
        let collector = Arc::new(TraceCollector::new());
        install(Arc::clone(&collector));
        uninstall();
        assert!(collector.is_empty());
    }

    #[test]
    fn spans_nest_and_tag_threads() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let collector = Arc::new(TraceCollector::new());
        install(Arc::clone(&collector));
        {
            let _outer = span!("outer", model = "resnet18");
            {
                let _inner = span!("inner", layer = 1);
            }
            let _sibling = span!("inner", layer = 2);
        }
        let worker = std::thread::spawn(|| {
            let _w = span!("worker");
        });
        worker.join().expect("worker thread");
        uninstall();

        let events = collector.snapshot();
        assert_eq!(events.len(), 4);
        // Drop order: inner(1), inner(2), outer, worker (joined after).
        let outer = events.iter().find(|e| e.name == "outer").expect("outer span");
        assert_eq!(outer.depth, 0);
        assert_eq!(outer.args, vec![("model", "resnet18".to_string())]);
        let inners: Vec<_> = events.iter().filter(|e| e.name == "inner").collect();
        assert_eq!(inners.len(), 2);
        for inner in &inners {
            assert_eq!(inner.depth, 1);
            assert_eq!(inner.thread, outer.thread);
            assert!(inner.start_micros >= outer.start_micros);
            assert!(inner.end_micros() <= outer.end_micros());
        }
        let worker = events.iter().find(|e| e.name == "worker").expect("worker span");
        assert_ne!(worker.thread, outer.thread);
        assert_eq!(worker.depth, 0);
    }

    #[test]
    fn ring_buffer_is_bounded_and_counts_drops() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let collector = Arc::new(TraceCollector::with_capacity(4));
        install(Arc::clone(&collector));
        for _ in 0..10 {
            let _s = span!("bounded");
        }
        uninstall();
        assert_eq!(collector.len(), 4);
        assert_eq!(collector.dropped(), 6);
    }

    #[test]
    fn kernel_spans_respect_the_sampling_knob() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let collector = Arc::new(TraceCollector::new().with_kernel_sampling(8));
        install(Arc::clone(&collector));
        for _ in 0..64 {
            let _k = kernel_span("kernel.tile");
        }
        uninstall();
        assert_eq!(collector.len(), 8, "1 in 8 of 64 events");
    }

    #[test]
    fn spans_carry_unique_nonzero_ids() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let collector = Arc::new(TraceCollector::new());
        install(Arc::clone(&collector));
        let outer = span!("id.outer");
        let outer_id = outer.id().expect("enabled span has an id");
        {
            let _inner = span!("id.inner");
        }
        drop(outer);
        uninstall();
        assert!(outer_id > 0);
        let events = collector.snapshot();
        assert_eq!(events.len(), 2);
        assert_ne!(events[0].id, events[1].id);
        assert!(events.iter().all(|e| e.id > 0));
        assert!(SpanGuard::disabled().id().is_none());
    }

    #[test]
    fn drain_empties_the_ring_and_anchors_the_clock() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let collector = Arc::new(TraceCollector::with_capacity(2));
        install(Arc::clone(&collector));
        for _ in 0..5 {
            let _s = span!("drain.me", point = "alexnet/int8");
        }
        uninstall();
        let snapshot = collector.drain();
        assert_eq!(snapshot.spans.len(), 2);
        assert_eq!(snapshot.dropped, 3);
        assert_eq!(snapshot.pid, u64::from(std::process::id()));
        assert!(snapshot.epoch_unix_micros > 0);
        assert_eq!(snapshot.spans[0].arg("point"), Some("alexnet/int8"));
        // The ring is empty afterwards but the drop counter survives.
        assert!(collector.is_empty());
        assert_eq!(collector.dropped(), 3);
        // The owned spans round-trip through the wire format.
        let json = serde_json::to_string(&snapshot).expect("serializes");
        let back: CollectorSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn concurrent_threads_account_for_every_dropped_span() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        const THREADS: u64 = 8;
        const SPANS_PER_THREAD: u64 = 100;
        const CAPACITY: usize = 32;
        let collector = Arc::new(TraceCollector::with_capacity(CAPACITY));
        install(Arc::clone(&collector));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..SPANS_PER_THREAD {
                        let _s = span!("concurrent.drop");
                    }
                });
            }
        });
        uninstall();
        // Every push either lands in the ring or bumps the drop counter —
        // under one lock — so the accounting is exact, not approximate.
        assert_eq!(collector.len(), CAPACITY);
        assert_eq!(collector.dropped(), THREADS * SPANS_PER_THREAD - CAPACITY as u64);
    }

    #[test]
    fn concurrent_kernel_sampling_hits_the_exact_ratio() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        const THREADS: u64 = 8;
        const EVENTS_PER_THREAD: u64 = 256;
        const SAMPLING: u64 = 16;
        let collector = Arc::new(TraceCollector::new().with_kernel_sampling(SAMPLING));
        install(Arc::clone(&collector));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..EVENTS_PER_THREAD {
                        let _k = kernel_span("concurrent.kernel");
                    }
                });
            }
        });
        uninstall();
        // The sampling counter is one atomic fetch_add shared by every
        // thread, so exactly 1 in SAMPLING of the total fires regardless
        // of interleaving (total is a multiple of SAMPLING).
        assert_eq!(collector.len() as u64, THREADS * EVENTS_PER_THREAD / SAMPLING);
    }

    #[test]
    fn concurrent_nesting_invariants_hold_per_thread() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        const THREADS: usize = 4;
        let collector = Arc::new(TraceCollector::new());
        install(Arc::clone(&collector));
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..10 {
                        let _outer = span!("nest.outer");
                        let _inner = span!("nest.inner");
                    }
                });
            }
        });
        uninstall();
        let events = collector.snapshot();
        assert_eq!(events.len(), THREADS * 20);
        let threads: std::collections::BTreeSet<u64> = events.iter().map(|e| e.thread).collect();
        assert_eq!(threads.len(), THREADS);
        for &thread in &threads {
            let outers: Vec<_> =
                events.iter().filter(|e| e.thread == thread && e.name == "nest.outer").collect();
            let inners: Vec<_> =
                events.iter().filter(|e| e.thread == thread && e.name == "nest.inner").collect();
            assert_eq!(outers.len(), 10);
            assert_eq!(inners.len(), 10);
            // Depth never leaks across iterations or threads, and every
            // inner nests strictly inside an outer of its own thread.
            for outer in &outers {
                assert_eq!(outer.depth, 0);
            }
            for inner in &inners {
                assert_eq!(inner.depth, 1);
                assert!(outers.iter().any(|outer| {
                    inner.start_micros >= outer.start_micros
                        && inner.end_micros() <= outer.end_micros()
                }));
            }
        }
    }

    #[test]
    fn trace_sink_parses_the_flag_and_writes_json() {
        let _guard = GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let missing = TraceSink::from_args(&["--trace-out".to_string()]);
        assert!(missing.unwrap_err().contains("--trace-out"));
        let none = TraceSink::from_args(&["--other".to_string(), "x".to_string()]).expect("parses");
        assert!(none.is_none());

        let dir = std::env::temp_dir().join(format!("dbpim-trace-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.json");
        let args = vec!["--trace-out".to_string(), path.display().to_string()];
        let sink = TraceSink::from_args(&args).expect("parses").expect("flag present");
        {
            let _s = span!("sink.test", point = 1);
        }
        sink.finish().expect("writes");
        let text = std::fs::read_to_string(&path).expect("file exists");
        assert!(text.contains("\"sink.test\""), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
