//! The log₂-bucketed latency histogram shared by every observability
//! surface.
//!
//! The serving daemon records one [`LatencyHistogram`] per request type and
//! ships the snapshots over the wire inside its `Stats` response; the
//! fleet's progress view aggregates them across daemons; the
//! [`MetricsRegistry`](crate::MetricsRegistry) hands one out per named
//! metric. The histogram is log₂-bucketed in microseconds — constant
//! memory, constant-time recording, and merges are plain element-wise
//! sums, so aggregation across threads, daemons and fleets never loses
//! information beyond the bucket granularity it started with.
//!
//! The serde encoding (`count` / `total_micros` / `max_micros` /
//! `buckets`) is a wire format: serve protocol v4 ships it verbatim, so
//! it must stay byte-identical across refactors.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Number of log₂ buckets a [`LatencyHistogram`] carries. Bucket `0` counts
/// sub-microsecond samples; bucket `i ≥ 1` counts samples in
/// `[2^(i-1), 2^i)` microseconds; the last bucket is a catch-all above
/// ~33.5 s — far beyond any request the daemon should be serving.
pub const LATENCY_BUCKETS: usize = 26;

/// A fixed-size log₂ latency histogram (microsecond resolution).
///
/// Recording is O(1) and allocation-free after construction; merging two
/// histograms is element-wise addition, which makes per-thread or
/// per-daemon snapshots cheap to aggregate without coordination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples in microseconds (for exact means).
    pub total_micros: u64,
    /// Largest sample seen, in microseconds.
    pub max_micros: u64,
    /// The log₂ bucket counters (see [`LATENCY_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self { count: 0, total_micros: 0, max_micros: 0, buckets: vec![0; LATENCY_BUCKETS] }
    }

    /// The bucket index a sample of `micros` microseconds falls into.
    #[must_use]
    fn bucket_index(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            // floor(log2(micros)) + 1, clamped into the catch-all bucket.
            let log2 = 63 - u64::leading_zeros(micros) as usize;
            (log2 + 1).min(LATENCY_BUCKETS - 1)
        }
    }

    /// The exclusive upper bound (in microseconds) of bucket `index`; the
    /// catch-all bucket reports `u64::MAX`.
    #[must_use]
    pub fn bucket_bound_micros(index: usize) -> u64 {
        if index + 1 >= LATENCY_BUCKETS {
            u64::MAX
        } else {
            1u64 << index
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: Duration) {
        self.record_micros(u64::try_from(sample.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one sample given directly in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        if self.buckets.len() != LATENCY_BUCKETS {
            // A snapshot deserialized from an older (shorter) wire format
            // stays mergeable: normalize before touching the counters.
            self.buckets.resize(LATENCY_BUCKETS, 0);
        }
        self.count += 1;
        self.total_micros = self.total_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
        self.buckets[Self::bucket_index(micros)] += 1;
    }

    /// `true` when no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean in microseconds (0 when empty).
    #[must_use]
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-th percentile (0.0–1.0) in microseconds:
    /// the bound of the first bucket whose cumulative count reaches
    /// `p * count`. Returns 0 when empty.
    #[must_use]
    pub fn percentile_micros(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                // The catch-all bucket has no finite bound; the max sample
                // is the tightest truthful answer there.
                return Self::bucket_bound_micros(index).min(self.max_micros.max(1));
            }
        }
        self.max_micros
    }

    /// Adds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.buckets.len() != LATENCY_BUCKETS {
            self.buckets.resize(LATENCY_BUCKETS, 0);
        }
        self.count += other.count;
        self.total_micros = self.total_micros.saturating_add(other.total_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
        for (index, &bucket) in other.buckets.iter().enumerate() {
            if bucket > 0 {
                self.buckets[index.min(LATENCY_BUCKETS - 1)] += bucket;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_in_microseconds() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(1023), 10);
        assert_eq!(LatencyHistogram::bucket_index(1024), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn recording_tracks_count_mean_max_and_percentiles() {
        let mut histogram = LatencyHistogram::new();
        assert!(histogram.is_empty());
        assert_eq!(histogram.percentile_micros(0.99), 0);
        for micros in [10, 20, 30, 40, 1_000_000] {
            histogram.record_micros(micros);
        }
        assert_eq!(histogram.count, 5);
        assert_eq!(histogram.total_micros, 1_000_100);
        assert_eq!(histogram.max_micros, 1_000_000);
        assert!((histogram.mean_micros() - 200_020.0).abs() < 1e-9);
        // p50 lands in the [16, 32) bucket; the bound is 32.
        assert_eq!(histogram.percentile_micros(0.5), 32);
        // p99 needs the 5th sample; its bucket bound exceeds the max, so
        // the max is reported instead of a vacuous power of two.
        assert_eq!(histogram.percentile_micros(0.99), 1_000_000);
    }

    #[test]
    fn merge_is_elementwise_and_lossless() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(100));
        b.record(Duration::from_micros(3));
        b.record(Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_micros, 100 + 3 + 2_000);
        assert_eq!(a.max_micros, 2_000);
        assert_eq!(a.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn wire_round_trip_preserves_every_counter() {
        let mut histogram = LatencyHistogram::new();
        for micros in [0, 1, 7, 4096, 123_456_789] {
            histogram.record_micros(micros);
        }
        let json = serde_json::to_string(&histogram).expect("serializes");
        let back: LatencyHistogram = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, histogram);
    }

    #[test]
    fn short_deserialized_bucket_vectors_are_normalized() {
        // An older wire format with fewer buckets must stay recordable and
        // mergeable after deserialization.
        let mut short =
            LatencyHistogram { count: 1, total_micros: 5, max_micros: 5, buckets: vec![0, 1] };
        short.record_micros(1 << 20);
        assert_eq!(short.buckets.len(), LATENCY_BUCKETS);
        assert_eq!(short.count, 2);

        let mut target =
            LatencyHistogram { count: 0, total_micros: 0, max_micros: 0, buckets: Vec::new() };
        target.merge(&short);
        assert_eq!(target.count, 2);
        assert_eq!(target.buckets.len(), LATENCY_BUCKETS);
    }
}
