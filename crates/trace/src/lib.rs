//! # dbpim-trace: the observability substrate of the DB-PIM workspace
//!
//! Every layer of the reproduction — pipeline phases, the cycle-accurate
//! simulator, DSE drivers, the serving daemon, the fleet orchestrator —
//! reports through this crate. It has three legs:
//!
//! * **Spans** ([`collector`]) — a global, thread-safe [`TraceCollector`]
//!   records nested, thread-id-tagged spans with monotonic-clock
//!   timestamps into a bounded ring buffer. The [`span!`] macro opens a
//!   span whose guard records it on drop; when no collector is installed
//!   the whole thing is one relaxed atomic load, so instrumented hot
//!   paths (the PR 6 bit-plane kernels) stay hot. Per-tile kernel events
//!   additionally pass a sampling knob ([`kernel_span`]) so a collector
//!   can keep one in N instead of drowning in them.
//! * **Metrics** ([`metrics`]) — a [`MetricsRegistry`] unifying named
//!   counters, gauges and the log₂-bucketed [`LatencyHistogram`]
//!   (previously private to the serving layer; its serde wire format is
//!   unchanged).
//! * **Exporters** ([`chrome`]) — Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`) and a human-readable per-phase
//!   summary table, plus the `--trace-out` plumbing ([`TraceSink`])
//!   every binary shares.
//!
//! A leveled, timestamped logger ([`logger`]) rides along so daemons emit
//! grep-able `LEVEL [tag] message` lines instead of ad-hoc `eprintln!`s.
//!
//! The cardinal rule, enforced by `tests/trace_observability.rs`: tracing
//! **never changes results**. A run with a collector installed must be
//! bit-identical in its outputs to the same run without one, and all trace
//! and log output goes to files or stderr — never to the deterministic
//! stdout reports CI byte-diffs.
//!
//! ```
//! use std::sync::Arc;
//! use dbpim_trace::{span, ChromeTrace, TraceCollector};
//!
//! let collector = Arc::new(TraceCollector::new());
//! dbpim_trace::install(Arc::clone(&collector));
//! {
//!     let _outer = span!("pipeline.compile", model = "resnet18");
//!     let _inner = span!("compile.layer", layer = 3);
//! }
//! dbpim_trace::uninstall();
//! let json = ChromeTrace::render(&collector.snapshot());
//! assert!(json.contains("pipeline.compile"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod collector;
pub mod histogram;
pub mod logger;
pub mod metrics;

pub use chrome::{phase_summary, render_phase_table, ChromeTrace, PhaseSummary, ProcessLane};
pub use collector::{
    collector, enabled, install, kernel_span, kernel_span_with, start_span, uninstall,
    unix_micros_now, CollectorSnapshot, SpanGuard, SpanRecord, TraceCollector, TraceSink,
    TraceSpan, DEFAULT_CAPACITY, DEFAULT_KERNEL_SAMPLING,
};
pub use histogram::{LatencyHistogram, LATENCY_BUCKETS};
pub use logger::{log_enabled, log_level, log_level_from_args, set_log_level, LogLevel};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
