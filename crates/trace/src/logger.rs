//! The leveled, timestamped logger daemons and orchestrators narrate
//! through.
//!
//! Lines go to **stderr** (stdout is reserved for deterministic reports
//! the CI byte-diffs) in the grep-able shape
//!
//! ```text
//! 2026-08-08T12:34:56.789Z INFO  [conn 42] authenticated
//! ```
//!
//! The level is a process-global knob set from `--log-level`
//! ([`set_log_level`]); lines above the configured level are skipped
//! before any formatting happens. Tags carry the connection / shard /
//! worker identity so a daemon's interleaved output stays attributable.

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// The process is losing work or about to exit.
    Error = 0,
    /// Something degraded but recoverable (a retry, a skipped snapshot).
    Warn = 1,
    /// Normal lifecycle narration (startup, shutdown, worker retirement).
    Info = 2,
    /// Per-request / per-point chatter, off by default.
    Debug = 3,
}

impl LogLevel {
    fn label(self) -> &'static str {
        match self {
            LogLevel::Error => "ERROR",
            LogLevel::Warn => "WARN ",
            LogLevel::Info => "INFO ",
            LogLevel::Debug => "DEBUG",
        }
    }

    fn from_u8(raw: u8) -> Self {
        match raw {
            0 => LogLevel::Error,
            1 => LogLevel::Warn,
            2 => LogLevel::Info,
            _ => LogLevel::Debug,
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label().trim_end())
    }
}

impl FromStr for LogLevel {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.to_ascii_lowercase().as_str() {
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            other => Err(format!("unknown log level `{other}` (error|warn|info|debug)")),
        }
    }
}

/// The process-global log level; lines above it are skipped.
static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Sets the process-global log level.
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-global log level.
#[must_use]
pub fn log_level() -> LogLevel {
    LogLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// `true` when a line at `level` would be emitted.
#[must_use]
pub fn log_enabled(level: LogLevel) -> bool {
    level <= log_level()
}

/// Emits one timestamped, tagged line to stderr (after the level check).
/// Prefer the [`log_error!`](crate::log_error) / [`log_warn!`](crate::log_warn)
/// / [`log_info!`](crate::log_info) / [`log_debug!`](crate::log_debug)
/// macros, which skip formatting for suppressed levels.
pub fn log(level: LogLevel, tag: &str, message: fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    eprintln!("{} {} [{tag}] {message}", utc_timestamp(), level.label());
}

/// The current wall-clock time as `YYYY-MM-DDTHH:MM:SS.mmmZ` (UTC).
#[must_use]
pub fn utc_timestamp() -> String {
    let now = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let millis = now.subsec_millis();
    let secs = now.as_secs();
    let (sec, min, hour) = (secs % 60, (secs / 60) % 60, (secs / 3600) % 24);
    let (year, month, day) = civil_from_days((secs / 86_400) as i64);
    format!("{year:04}-{month:02}-{day:02}T{hour:02}:{min:02}:{sec:02}.{millis:03}Z")
}

/// Days-since-epoch → (year, month, day), Howard Hinnant's civil-calendar
/// algorithm.
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let days = days + 719_468;
    let era = days.div_euclid(146_097);
    let doe = days.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if month <= 2 { year + 1 } else { year }, month, day)
}

/// Logs at [`LogLevel::Error`]: `log_error!("tag", "format {}", args)`.
#[macro_export]
macro_rules! log_error {
    ($tag:expr, $($arg:tt)*) => {
        if $crate::logger::log_enabled($crate::LogLevel::Error) {
            $crate::logger::log($crate::LogLevel::Error, $tag, ::std::format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Warn`]: `log_warn!("tag", "format {}", args)`.
#[macro_export]
macro_rules! log_warn {
    ($tag:expr, $($arg:tt)*) => {
        if $crate::logger::log_enabled($crate::LogLevel::Warn) {
            $crate::logger::log($crate::LogLevel::Warn, $tag, ::std::format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Info`]: `log_info!("tag", "format {}", args)`.
#[macro_export]
macro_rules! log_info {
    ($tag:expr, $($arg:tt)*) => {
        if $crate::logger::log_enabled($crate::LogLevel::Info) {
            $crate::logger::log($crate::LogLevel::Info, $tag, ::std::format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Debug`]: `log_debug!("tag", "format {}", args)`.
#[macro_export]
macro_rules! log_debug {
    ($tag:expr, $($arg:tt)*) => {
        if $crate::logger::log_enabled($crate::LogLevel::Debug) {
            $crate::logger::log($crate::LogLevel::Debug, $tag, ::std::format_args!($($arg)*));
        }
    };
}

/// Scans an argument list for `--log-level <level>` and applies it.
/// Unknown flags stay untouched, so this layers on the workspace's strict
/// option parsers.
///
/// # Errors
///
/// Returns a message when the flag is present with a missing or unknown
/// value.
pub fn log_level_from_args(args: &[String]) -> Result<Option<LogLevel>, String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--log-level" {
            let raw = args
                .get(i + 1)
                .ok_or_else(|| "invalid value for `--log-level`: missing value".to_string())?;
            let level: LogLevel =
                raw.parse().map_err(|e| format!("invalid value for `--log-level`: {e}"))?;
            set_log_level(level);
            return Ok(Some(level));
        }
        i += 1;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("error".parse::<LogLevel>().unwrap(), LogLevel::Error);
        assert_eq!("WARN".parse::<LogLevel>().unwrap(), LogLevel::Warn);
        assert_eq!("Info".parse::<LogLevel>().unwrap(), LogLevel::Info);
        assert_eq!("debug".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("verbose".parse::<LogLevel>().is_err());
        assert!(LogLevel::Error < LogLevel::Debug);
    }

    #[test]
    fn the_global_level_gates_emission() {
        // Tests share the process-global; restore the default when done.
        set_log_level(LogLevel::Warn);
        assert!(log_enabled(LogLevel::Error));
        assert!(log_enabled(LogLevel::Warn));
        assert!(!log_enabled(LogLevel::Info));
        assert!(!log_enabled(LogLevel::Debug));
        set_log_level(LogLevel::Info);
        assert!(log_enabled(LogLevel::Info));
    }

    #[test]
    fn flag_scan_sets_the_level_and_rejects_garbage() {
        let args = vec!["--log-level".to_string(), "debug".to_string()];
        assert_eq!(log_level_from_args(&args).unwrap(), Some(LogLevel::Debug));
        assert_eq!(log_level(), LogLevel::Debug);
        set_log_level(LogLevel::Info);

        assert_eq!(log_level_from_args(&["--other".to_string()]).unwrap(), None);
        assert!(log_level_from_args(&["--log-level".to_string()]).is_err());
        let bad = vec!["--log-level".to_string(), "loud".to_string()];
        assert!(log_level_from_args(&bad).unwrap_err().contains("loud"));
    }

    #[test]
    fn timestamps_are_iso8601_utc() {
        let ts = utc_timestamp();
        // 2026-08-08T12:34:56.789Z — 24 chars, fixed layout.
        assert_eq!(ts.len(), 24, "{ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert_eq!(&ts[23..], "Z");
        // Known date: 2024-01-01 is 19723 days after the epoch.
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_782), (2024, 2, 29), "leap day");
    }
}
