//! The metrics registry: named counters, gauges and latency histograms
//! behind one lock, snapshot-able as plain data.
//!
//! Counters are monotonic `u64`s (requests served, errors answered),
//! gauges are instantaneous `i64`s (queue depth, active connections), and
//! histograms are [`LatencyHistogram`]s keyed by name. The serving
//! daemon's protocol-v4 `Stats` response is assembled *from* a registry
//! snapshot, so the wire numbers and the registry can never disagree.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

/// A thread-safe registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// A point-in-time copy of a registry's contents (serializable, ordered
/// by name).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauges by name.
    pub gauges: Vec<(String, i64)>,
    /// Latency histograms by name.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

impl MetricsSnapshot {
    /// The counter value under `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// The gauge value under `name` (0 when absent).
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// The histogram under `name`, if one was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// counters and gauges as single samples, histograms as cumulative
    /// `_bucket{le="…"}` series (log₂ bounds in microseconds) plus `_sum`
    /// and `_count`. Metric names are sanitized (`serve.requests` →
    /// `serve_requests`) so the output scrapes cleanly.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, histogram) in &self.histograms {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (index, bucket) in histogram.buckets.iter().enumerate() {
                cumulative += bucket;
                let bound = LatencyHistogram::bucket_bound_micros(index);
                if bound == u64::MAX {
                    // The catch-all bucket *is* +Inf; emitted below.
                    break;
                }
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {count}\n{name}_sum {sum}\n{name}_count {count}\n",
                count = histogram.count,
                sum = histogram.total_micros,
            ));
        }
        out
    }
}

/// Maps a registry metric name onto the Prometheus name charset
/// (`[a-zA-Z0-9_:]`, no leading digit): every other byte becomes `_`.
fn sanitize_metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `delta` to the counter under `name` and returns the new value.
    pub fn add(&self, name: &str, delta: u64) -> u64 {
        let mut inner = self.lock();
        let counter = inner.counters.entry(name.to_string()).or_insert(0);
        *counter = counter.saturating_add(delta);
        *counter
    }

    /// Increments the counter under `name` by one and returns the new
    /// value.
    pub fn incr(&self, name: &str) -> u64 {
        self.add(name, 1)
    }

    /// The counter value under `name` (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the gauge under `name`.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Adds `delta` (possibly negative) to the gauge under `name` and
    /// returns the new value.
    pub fn adjust_gauge(&self, name: &str, delta: i64) -> i64 {
        let mut inner = self.lock();
        let gauge = inner.gauges.entry(name.to_string()).or_insert(0);
        *gauge = gauge.saturating_add(delta);
        *gauge
    }

    /// The gauge value under `name` (0 when never set).
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        self.lock().gauges.get(name).copied().unwrap_or(0)
    }

    /// Records one latency sample into the histogram under `name`.
    pub fn observe(&self, name: &str, sample: Duration) {
        self.observe_micros(name, u64::try_from(sample.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one latency sample (microseconds) into the histogram under
    /// `name`.
    pub fn observe_micros(&self, name: &str, micros: u64) {
        self.lock().histograms.entry(name.to_string()).or_default().record_micros(micros);
    }

    /// A copy of the histogram under `name`, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<LatencyHistogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Renders the registry's current contents in the Prometheus text
    /// exposition format (see [`MetricsSnapshot::render_prometheus`]).
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// A point-in-time copy of everything the registry holds.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(n, v)| (n.clone(), *v)).collect(),
            histograms: inner.histograms.iter().map(|(n, h)| (n.clone(), h.clone())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let registry = MetricsRegistry::new();
        assert_eq!(registry.counter("requests"), 0);
        assert_eq!(registry.incr("requests"), 1);
        assert_eq!(registry.add("requests", 4), 5);
        registry.set_gauge("queue_depth", 3);
        assert_eq!(registry.adjust_gauge("queue_depth", -2), 1);
        assert_eq!(registry.adjust_gauge("active", 2), 2);
        registry.observe("latency.Ping", Duration::from_micros(150));
        registry.observe_micros("latency.Ping", 90);

        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("requests"), 5);
        assert_eq!(snapshot.counter("never"), 0);
        assert_eq!(snapshot.gauge("queue_depth"), 1);
        let histogram = snapshot.histogram("latency.Ping").expect("recorded");
        assert_eq!(histogram.count, 2);
        assert_eq!(histogram.total_micros, 240);
        assert_eq!(registry.histogram("latency.Ping").expect("recorded"), *histogram);
        assert!(registry.histogram("latency.Never").is_none());
    }

    #[test]
    fn snapshots_serialize_deterministically() {
        let registry = MetricsRegistry::new();
        registry.incr("b");
        registry.incr("a");
        registry.observe_micros("h", 7);
        let snapshot = registry.snapshot();
        // BTreeMap ordering: names come out sorted regardless of insertion.
        assert_eq!(snapshot.counters[0].0, "a");
        assert_eq!(snapshot.counters[1].0, "b");
        let json = serde_json::to_string(&snapshot).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn prometheus_rendering_covers_all_three_kinds() {
        let registry = MetricsRegistry::new();
        registry.add("serve.requests", 7);
        registry.set_gauge("serve.active-connections", 3);
        registry.observe_micros("serve.latency.Ping", 1); // bucket le="2"
        registry.observe_micros("serve.latency.Ping", 100); // bucket le="128"
        let text = registry.render_prometheus();

        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 7\n"), "{text}");
        assert!(
            text.contains("# TYPE serve_active_connections gauge\nserve_active_connections 3\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE serve_latency_Ping histogram\n"), "{text}");
        // Cumulative buckets: the le="2" bucket holds the first sample,
        // le="128" both, and +Inf/_count/_sum agree with the totals.
        assert!(text.contains("serve_latency_Ping_bucket{le=\"1\"} 0\n"), "{text}");
        assert!(text.contains("serve_latency_Ping_bucket{le=\"2\"} 1\n"), "{text}");
        assert!(text.contains("serve_latency_Ping_bucket{le=\"128\"} 2\n"), "{text}");
        assert!(text.contains("serve_latency_Ping_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("serve_latency_Ping_sum 101\n"), "{text}");
        assert!(text.contains("serve_latency_Ping_count 2\n"), "{text}");
        // Snapshot and registry render identically.
        assert_eq!(text, registry.snapshot().render_prometheus());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let registry = std::sync::Arc::clone(&registry);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    registry.incr("hits");
                }
            }));
        }
        for handle in handles {
            handle.join().expect("worker");
        }
        assert_eq!(registry.counter("hits"), 400);
    }
}
