//! Bit-accurate PIM-macro micro-benchmark.
//!
//! ```bash
//! cargo run --release --example macro_microbench
//! ```
//!
//! Loads one tile of FTA-approximated filters into the bit-accurate macro
//! model and executes it in all four sparsity configurations, verifying the
//! results against a software dot product and reporting the cycle, cell-level
//! utilization and zero-column statistics — the microscopic view of where the
//! Fig. 7 gains come from.

use std::error::Error;

use db_pim::prelude::*;
use dbpim_arch::MacroComputeStats;
use dbpim_fta::metadata::FilterMetadata;
use dbpim_fta::FilterApprox;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn dot<T: Into<i64> + Copy>(weights: &[T], inputs: &[i8]) -> i64 {
    weights.iter().zip(inputs).map(|(&w, &x)| w.into() * i64::from(x)).sum()
}

fn describe(label: &str, stats: &MacroComputeStats) {
    println!(
        "{:<28} {:>6} cycles  {:>7} cell-ops  {:>6.1} % effective  {:>4} skipped columns",
        label,
        stats.compute_cycles,
        stats.cell_reads,
        100.0 * stats.dynamic_utilization(),
        stats.skipped_columns
    );
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let tables = QueryTables::new();

    // One tile: 8 filters of 128 weights, post-ReLU style inputs.
    let filter_len = 128usize;
    let filters = 8usize;
    let inputs: Vec<i8> = (0..filter_len).map(|_| rng.gen_range(0i8..=31)).collect();
    let mut raw_filters = Vec::new();
    let mut approx_filters = Vec::new();
    let mut metadata = Vec::new();
    for _ in 0..filters {
        let raw: Vec<i8> = (0..filter_len).map(|_| rng.gen()).collect();
        let approx = FilterApprox::approximate(&raw, &tables)?;
        metadata.push(FilterMetadata::from_filter(0, &approx));
        approx_filters.push(approx);
        raw_filters.push(raw);
    }

    println!("tile: {filters} filters x {filter_len} weights, INT8 inputs in [0, 31]\n");

    // DB-PIM sparse execution, with and without the IPU skipping columns.
    let mut pim = PimMacro::new(ArchConfig::paper())?;
    let weight_only =
        pim.execute_sparse_tile(&metadata, &inputs, &InputPreprocessor::without_sparsity())?;
    let mut pim = PimMacro::new(ArchConfig::paper())?;
    let hybrid = pim.execute_sparse_tile(&metadata, &inputs, &InputPreprocessor::new())?;

    // Dense baseline execution (two filters at a time).
    let mut dense_stats = MacroComputeStats::default();
    let mut dense_outputs = Vec::new();
    for pair in raw_filters.chunks(2) {
        let mut pim = PimMacro::new(ArchConfig::paper())?;
        let exec = pim.execute_dense_tile(pair, &inputs, &InputPreprocessor::without_sparsity())?;
        dense_outputs.extend(exec.outputs);
        dense_stats.compute_cycles += exec.stats.compute_cycles;
        dense_stats.cell_reads += exec.stats.cell_reads;
        dense_stats.effective_cell_ops += exec.stats.effective_cell_ops;
        dense_stats.skipped_columns += exec.stats.skipped_columns;
    }

    // Verify every output against the software reference.
    for (f, approx) in approx_filters.iter().enumerate() {
        assert_eq!(weight_only.outputs[f], dot(approx.values(), &inputs));
        assert_eq!(hybrid.outputs[f], dot(approx.values(), &inputs));
        assert_eq!(dense_outputs[f], dot(&raw_filters[f], &inputs));
    }
    println!("all macro outputs match the software dot products\n");

    describe("dense baseline", &dense_stats);
    describe("DB-PIM (weight sparsity)", &weight_only.stats);
    describe("DB-PIM (hybrid sparsity)", &hybrid.stats);

    println!(
        "\ncycle reduction vs dense: weight-only {:.2}x, hybrid {:.2}x",
        dense_stats.compute_cycles as f64 / weight_only.stats.compute_cycles as f64,
        dense_stats.compute_cycles as f64 / hybrid.stats.compute_cycles as f64
    );
    Ok(())
}
