//! Quickstart: run the complete DB-PIM co-design pipeline on a small CNN.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The session builds a model with synthetic weights, quantizes it to INT8,
//! applies the FTA algorithm, compiles the result for the DB-PIM macros and
//! the dense baseline, and simulates all four Fig. 7 sparsity configurations
//! from the same compiled programs.

use std::error::Error;

use db_pim::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    // A fast configuration: 10 classes, a handful of synthetic images.
    let mut config = PipelineConfig::fast();
    config.evaluation_images = 8;
    let session = SimSession::new(config)?;

    let model = zoo::tiny_cnn(10, 42)?;
    println!("model: {} ({} nodes)", model.name(), model.nodes().len());
    let result = session.codesign_model(&model, true)?;

    println!("\n== model summary ==");
    print!("{}", result.summary.to_table());

    println!("\n== FTA algorithm ==");
    println!("binary zero-bit ratio : {:.1} %", 100.0 * result.fta_stats.binary_zero_ratio());
    println!("CSD zero-digit ratio  : {:.1} %", 100.0 * result.fta_stats.csd_zero_ratio());
    println!("FTA zero-digit ratio  : {:.1} %", 100.0 * result.fta_stats.fta_zero_ratio());
    println!("actual utilization    : {:.2} %", 100.0 * result.utilization());
    if let Some(fidelity) = &result.fidelity {
        println!(
            "fidelity              : {:.1} % top-1 agreement, {:.2} % accuracy drop",
            100.0 * fidelity.top1_agreement,
            100.0 * fidelity.accuracy_drop()
        );
    }

    println!("\n== Fig. 7 style comparison (vs dense digital PIM baseline) ==");
    for sparsity in SparsityConfig::all() {
        let run = result.run(sparsity).expect("all four configurations are simulated");
        println!(
            "{:<16} {:>10} cycles  {:>8.3} ms  {:>8.2} uJ  speedup {:>5.2}x  energy saving {:>5.1} %",
            sparsity.label(),
            run.total_cycles(),
            run.latency_ms(),
            run.total_energy_uj(),
            result.speedup(sparsity),
            100.0 * result.energy_saving(sparsity)
        );
    }

    println!("\n== area (Table 4 style) ==");
    let area = AreaModel::calibrated_28nm();
    for component in area.breakdown(&ArchConfig::paper()) {
        println!(
            "{:<32} {:>8.5} mm^2  {:>5.2} %",
            component.name,
            component.mm2,
            100.0 * component.share
        );
    }
    Ok(())
}
