//! ResNet-18 co-design walk-through.
//!
//! ```bash
//! cargo run --release --example resnet18_codesign
//! ```
//!
//! Runs the full pipeline on the CIFAR-100 ResNet-18 topology (half width to
//! keep the runtime of the example modest) and prints the per-layer FTA
//! statistics, the measured input sparsity and the four-configuration
//! performance comparison — the same workload the paper's Fig. 7 reports the
//! ResNet-18 bars for.

use std::error::Error;

use db_pim::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let mut config = PipelineConfig::paper();
    config.width_mult = 0.5;
    config.calibration_images = 2;
    config.evaluation_images = 4;
    let session = SimSession::new(config)?;

    println!("building ResNet-18 (width 0.5) with synthetic weights...");
    let result = session.codesign(ModelKind::ResNet18, true)?;

    println!("\n== per-layer FTA statistics ==");
    println!(
        "{:<30} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "layer", "filters", "phi-mode", "csd-zero", "fta-zero", "util"
    );
    for layer in &result.fta_stats.layers {
        println!(
            "{:<30} {:>8} {:>8} {:>9.1}% {:>9.1}% {:>9.1}%",
            layer.name,
            layer.filter_count,
            layer.dominant_threshold(),
            100.0 * layer.csd_zero_ratio,
            100.0 * layer.fta_zero_ratio,
            100.0 * layer.utilization
        );
    }
    println!("model utilization U_act = {:.2} %", 100.0 * result.utilization());
    println!("mean input zero-column ratio = {:.1} %", 100.0 * result.input_sparsity.mean_ratio());

    if let Some(fidelity) = &result.fidelity {
        println!(
            "\nfidelity vs INT8 baseline: {:.1} % agreement, accuracy drop {:.2} %",
            100.0 * fidelity.top1_agreement,
            100.0 * fidelity.accuracy_drop()
        );
    }

    println!("\n== Fig. 7 comparison ==");
    let baseline = result.baseline();
    println!(
        "dense baseline: {} cycles, {:.2} uJ",
        baseline.total_cycles(),
        baseline.total_energy_uj()
    );
    for sparsity in [
        SparsityConfig::InputSparsity,
        SparsityConfig::WeightSparsity,
        SparsityConfig::HybridSparsity,
    ] {
        println!(
            "{:<16} speedup {:>5.2}x   energy saving {:>5.1} %",
            sparsity.label(),
            result.speedup(sparsity),
            100.0 * result.energy_saving(sparsity)
        );
    }

    let hybrid = result.run(SparsityConfig::HybridSparsity).expect("hybrid run exists");
    println!(
        "\nhybrid run: {:.3} ms/inference, {:.2} GOPS, {:.2} TOPS/W, {:.2} mW",
        hybrid.latency_ms(),
        hybrid.throughput_gops(),
        hybrid.energy_efficiency_tops_per_w(),
        hybrid.average_power_mw()
    );
    Ok(())
}
