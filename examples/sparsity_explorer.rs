//! Sparsity explorer: how much bit-level sparsity do the paper's models have,
//! and what does the FTA algorithm do to it?
//!
//! ```bash
//! cargo run --release --example sparsity_explorer [model]
//! ```
//!
//! `model` is one of `alexnet`, `vgg19`, `resnet18`, `mobilenetv2`,
//! `efficientnetb0` (default `mobilenetv2`). The example reports the
//! Fig. 2(a) style zero-bit ratios, the per-filter threshold distribution, a
//! forced-threshold ablation that shows the accuracy/sparsity trade-off
//! Algorithm 1 navigates, and a four-configuration sweep rendered from a
//! [`BatchRunner`] `SweepReport`.

use std::error::Error;

use db_pim::prelude::*;
use dbpim_fta::{FilterApprox, LayerApprox};

fn parse_model(name: &str) -> ModelKind {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => ModelKind::AlexNet,
        "vgg19" => ModelKind::Vgg19,
        "resnet18" => ModelKind::ResNet18,
        "efficientnetb0" | "efficientnet" => ModelKind::EfficientNetB0,
        _ => ModelKind::MobileNetV2,
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let kind = parse_model(&std::env::args().nth(1).unwrap_or_else(|| "mobilenetv2".to_string()));
    println!("model: {kind} (width 0.5, synthetic weights)");

    // One session backs the whole exploration: the quantized model, the FTA
    // approximation and the compiled programs are prepared once and shared
    // by the statistics below and by the sweep at the end.
    let mut config = PipelineConfig::paper();
    config.seed = 7;
    config.width_mult = 0.5;
    config.calibration_images = 2;
    let runner = BatchRunner::new(config.without_fidelity())?;
    let artifacts = runner.session().artifacts(kind)?;
    let approx = artifacts.approx();
    let stats = artifacts.fta_stats();

    println!("\n== Fig. 2(a): zero-bit ratio of the weights ==");
    println!("plain binary (Ori_Zero): {:.1} %", 100.0 * stats.binary_zero_ratio());
    println!("CSD recoded  (CSD_Zero): {:.1} %", 100.0 * stats.csd_zero_ratio());
    println!("FTA (Ours)             : {:.1} %", 100.0 * stats.fta_zero_ratio());
    println!("actual utilization     : {:.2} %", 100.0 * stats.utilization());
    println!("mean |error| per weight: {:.3} LSB", stats.mean_abs_error());

    println!("\n== per-filter threshold distribution ==");
    let mut histogram = [0usize; 3];
    for layer in &stats.layers {
        for (phi, count) in layer.threshold_histogram.iter().enumerate() {
            histogram[phi] += count;
        }
    }
    let total: usize = histogram.iter().sum();
    for (phi, count) in histogram.iter().enumerate() {
        println!(
            "phi_th = {phi}: {count:>6} filters ({:.1} %)",
            100.0 * *count as f64 / total.max(1) as f64
        );
    }

    println!("\n== forced-threshold ablation on the widest convolution ==");
    let widest = approx
        .layers()
        .iter()
        .max_by_key(|l| l.filter_count() * l.filter_len())
        .expect("the model has PIM layers");
    ablation(widest)?;

    println!("\n== Fig. 7 sweep (batch runner, artifacts reused) ==");
    let report = runner.run(&SweepSpec::new(vec![kind]))?;
    let result = report.result(kind).expect("model swept");
    for sparsity in SparsityConfig::all() {
        let run = result.run(sparsity).expect("all four configurations simulated");
        println!(
            "{:<16} {:>10} cycles  speedup {:>5.2}x  energy saving {:>5.1} %",
            sparsity.label(),
            run.total_cycles(),
            result.speedup(sparsity),
            100.0 * result.energy_saving(sparsity)
        );
    }
    println!(
        "sweep: {} model(s), {} simulation run(s) in {:.1} ms",
        report.prepared_models,
        report.simulated_runs,
        report.wall_time.as_secs_f64() * 1e3
    );
    Ok(())
}

/// Re-approximates one layer with every forced threshold and reports the
/// sparsity / error trade-off Algorithm 1 balances automatically.
fn ablation(layer: &LayerApprox) -> Result<(), Box<dyn Error>> {
    let tables = QueryTables::new();
    println!(
        "layer {} ({} filters x {} weights)",
        layer.name(),
        layer.filter_count(),
        layer.filter_len()
    );
    for forced in 0..=2u32 {
        let mut stored = 0usize;
        let mut error_sum = 0.0f64;
        let mut weights = 0usize;
        for f in 0..layer.filter_count() {
            let original =
                &layer.original_values()[f * layer.filter_len()..(f + 1) * layer.filter_len()];
            let approx = FilterApprox::approximate_with_threshold(original, forced, &tables)?;
            stored += approx.stored_blocks();
            error_sum += approx.mean_abs_error(original) * original.len() as f64;
            weights += original.len();
        }
        println!(
            "forced phi_th = {forced}: {:>7} stored blocks, zero ratio {:.1} %, mean |error| {:.3} LSB",
            stored,
            100.0 * (1.0 - stored as f64 / (weights * 8) as f64),
            error_sum / weights as f64
        );
    }
    println!("(Algorithm 1 picks the threshold per filter from the mode of its digit counts.)");
    Ok(())
}
