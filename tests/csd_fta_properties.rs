//! Property-based cross-crate invariants: CSD encoding, FTA approximation,
//! metadata extraction and the bit-accurate macro all agree with plain
//! integer arithmetic for arbitrary inputs.
//!
//! The original suite used `proptest`; the offline build environment cannot
//! fetch it, so each property runs over a deterministic ChaCha8-seeded case
//! set (same case counts as before) plus the exhaustive i8 domain where it
//! applies.

use dbpim_arch::{ArchConfig, InputPreprocessor, PimMacro};
use dbpim_csd::{CsdWord, DyadicBlock};
use dbpim_fta::metadata::FilterMetadata;
use dbpim_fta::{select_threshold, FilterApprox, QueryTables};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 96;

/// Deterministic random weight vectors with lengths in `1..max_len`.
fn weight_cases(seed: u64, max_len: usize) -> Vec<Vec<i8>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..CASES)
        .map(|_| {
            let len = rng.gen_range(1..max_len);
            (0..len).map(|_| rng.gen()).collect()
        })
        .collect()
}

/// CSD recoding is lossless and canonical for every INT8 value.
#[test]
fn csd_round_trips_and_is_canonical() {
    for value in i8::MIN..=i8::MAX {
        let word = CsdWord::from_i8(value);
        assert_eq!(word.to_i32(), i32::from(value));
        assert!(word.nonzero_digits() <= 4);
        for pair in word.digits().windows(2) {
            assert!(!(pair[0].is_nonzero() && pair[1].is_nonzero()), "value {value}");
        }
        // Dyadic blocks reconstruct the value.
        let reconstructed: i32 = word.dyadic_blocks().iter().map(DyadicBlock::value).sum();
        assert_eq!(reconstructed, i32::from(value));
    }
}

/// The FTA approximation never exceeds its threshold and its metadata is
/// lossless.
#[test]
fn fta_respects_threshold_and_metadata_reconstructs() {
    let tables = QueryTables::new();
    for weights in weight_cases(0xF7A1, 80) {
        let filter = FilterApprox::approximate(&weights, &tables).unwrap();
        let threshold = filter.threshold();
        assert!(threshold <= 2);
        assert_eq!(threshold, select_threshold(&weights));
        for &v in filter.values() {
            assert!(dbpim_csd::phi(v) <= threshold);
        }
        let metadata = FilterMetadata::from_filter(0, &filter);
        for (slots, &approx) in metadata.weights.iter().zip(filter.values()) {
            assert_eq!(slots.reconstruct(), approx);
        }
        assert!(metadata.stored_cells() <= metadata.allocated_cells());
    }
}

/// The approximation error is bounded by the worst-case gap of the query
/// table that was used.
#[test]
fn fta_error_is_bounded() {
    let tables = QueryTables::new();
    for weights in weight_cases(0xF7A2, 64) {
        let filter = FilterApprox::approximate(&weights, &tables).unwrap();
        let bound = match filter.threshold() {
            0 => 128,
            1 => 63,
            _ => 8,
        };
        for (&w, &a) in weights.iter().zip(filter.values()) {
            assert!((i32::from(w) - a).abs() <= bound);
        }
    }
}

/// The bit-accurate macro reproduces the software dot product of the
/// approximated weights for arbitrary filters and inputs, with and without
/// input-column skipping.
#[test]
fn macro_matches_software_dot_product() {
    let tables = QueryTables::new();
    for (case, weights) in weight_cases(0xF7A3, 48).into_iter().enumerate() {
        let len = weights.len();
        let seed = (case % 16) as i64;
        let inputs: Vec<i8> =
            (0..len).map(|i| ((i as i64 * 37 + seed * 11) % 256 - 128) as i8).collect();
        let filter = FilterApprox::approximate(&weights, &tables).unwrap();
        let meta = FilterMetadata::from_filter(0, &filter);
        let expected: i64 =
            filter.values().iter().zip(&inputs).map(|(&w, &x)| i64::from(w) * i64::from(x)).sum();

        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let plain = pim
            .execute_sparse_tile(
                std::slice::from_ref(&meta),
                &inputs,
                &InputPreprocessor::without_sparsity(),
            )
            .unwrap();
        assert_eq!(plain.outputs[0], expected);

        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let skipping =
            pim.execute_sparse_tile(&[meta], &inputs, &InputPreprocessor::new()).unwrap();
        assert_eq!(skipping.outputs[0], expected);
        assert!(skipping.stats.compute_cycles <= plain.stats.compute_cycles);
    }
}

/// The dense-baseline mapping also reproduces plain INT8 dot products.
#[test]
fn dense_macro_matches_software_dot_product() {
    for (case, weights) in weight_cases(0xF7A4, 48).into_iter().enumerate() {
        let len = weights.len();
        let seed = (case % 8) as i64;
        let inputs: Vec<i8> =
            (0..len).map(|i| ((i as i64 * 53 + seed * 7) % 256 - 128) as i8).collect();
        let expected: i64 =
            weights.iter().zip(&inputs).map(|(&w, &x)| i64::from(w) * i64::from(x)).sum();
        let mut pim = PimMacro::new(ArchConfig::paper()).unwrap();
        let exec = pim
            .execute_dense_tile(&[weights], &inputs, &InputPreprocessor::without_sparsity())
            .unwrap();
        assert_eq!(exec.outputs[0], expected);
    }
}
