//! The determinism / resume contract of the design-space-exploration
//! driver:
//!
//! * a DSE run over a grid is bit-identical to independent per-point
//!   `Pipeline` runs at each geometry;
//! * save → kill → resume recomputes only the missing points (asserted via
//!   `SessionCacheStats`; report timestamps are ignored in equality);
//! * the extracted Pareto frontier matches a brute-force O(n²) reference.

use db_pim::prelude::*;

fn small_config() -> PipelineConfig {
    let mut config = PipelineConfig::fast();
    config.width_mult = 0.25;
    config.calibration_images = 1;
    config.evaluation_images = 2;
    config
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dbpim-dse-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn small_grid() -> ArchGrid {
    ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]).with_rows(vec![32, 64])
}

/// Every entry of a DSE run is bit-identical to an independent `Pipeline`
/// run configured at that entry's geometry — the grid driver adds caching
/// and persistence, never different numbers.
#[test]
fn dse_grid_is_bit_identical_to_per_point_pipeline_runs() {
    let config = small_config();
    let driver = DseDriver::new(config).expect("valid config");
    let spec = DseSpec::new(small_grid(), vec![ModelKind::AlexNet]).with_fidelity();
    let report = driver.run(&spec).expect("exploration runs");

    assert_eq!(report.total_points, 4);
    assert!(report.is_complete());
    assert_eq!(report.fresh_points, 4);

    for entry in &report.entries {
        let mut point_config = config;
        point_config.arch = entry.arch;
        let independent = Pipeline::new(point_config)
            .expect("valid per-point config")
            .run_kind(entry.kind)
            .expect("pipeline runs");
        assert_eq!(
            entry.result, independent,
            "DSE entry at {} macros x {} rows diverges from the direct Pipeline run",
            entry.arch.macros, entry.arch.rows_per_dbmu
        );
    }

    // The four geometries genuinely differ (the grid is not degenerate).
    let cycles: Vec<u64> = report
        .entries
        .iter()
        .map(|e| e.result.run(SparsityConfig::HybridSparsity).expect("hybrid run").total_cycles())
        .collect();
    assert!(cycles.windows(2).any(|w| w[0] != w[1]), "all grid points simulated identically");
}

/// Save → kill → resume: a snapshot with half its entries deleted is
/// completed by re-simulating only the missing points. The session cache
/// counters prove nothing else was rebuilt, surviving entries keep their
/// original timestamps, and the resumed report equals the cold one with
/// timestamps ignored.
#[test]
fn resume_from_snapshot_recomputes_only_missing_points() {
    let config = small_config();
    let path = temp_path("resume.json");
    let spec = DseSpec::new(small_grid(), vec![ModelKind::AlexNet]).with_fidelity();

    // Cold run, snapshotted per batch of 2.
    let cold_driver =
        DseDriver::new(config).expect("valid config").with_snapshot(&path).with_batch_size(2);
    let cold = cold_driver.run(&spec).expect("cold run");
    assert_eq!(cold.fresh_points, 4);
    let saved = DseReport::load(&path).expect("snapshot readable");
    assert!(saved.results_match(&cold), "snapshot does not reflect the cold run");

    // "Kill" the run after half the grid: drop the last two entries from
    // the snapshot, as if the process died mid-exploration.
    let mut torn = saved.clone();
    torn.entries.truncate(2);
    torn.save(&path).expect("torn snapshot saves");

    // Resume with a *fresh* driver (empty caches, as after a real kill).
    let resume_driver =
        DseDriver::new(config).expect("valid config").with_snapshot(&path).with_batch_size(2);
    let resumed = resume_driver.run(&spec).expect("resume runs");

    assert_eq!(resumed.fresh_points, 2, "resume recomputed more than the missing points");
    assert!(resumed.is_complete());
    assert!(resumed.results_match(&cold), "resumed results diverge from the cold run");

    // Adopted entries are carried over verbatim — timestamps included —
    // while the two recomputed points were actually executed.
    assert_eq!(resumed.entries[0], torn.entries[0]);
    assert_eq!(resumed.entries[1], torn.entries[1]);

    // The cache counters prove the resume's work: one artifact build for
    // the single (model, width), and exactly two program compilations —
    // one per missing geometry. The surviving geometries were never
    // touched.
    let stats = resume_driver.cache_stats();
    assert_eq!(stats.artifact_misses, 1, "artifacts rebuilt more than once: {stats:?}");
    assert_eq!(stats.program_misses, 2, "non-missing geometries were re-compiled: {stats:?}");
    // Each recomputed point simulates the four sparsity configurations
    // from its one compiled program pair: 3 warm program hits per point.
    assert_eq!(stats.program_hits, 6, "{stats:?}");

    // A second resume finds nothing missing and recomputes nothing.
    let noop_driver = DseDriver::new(config).expect("valid config").with_snapshot(&path);
    let noop = noop_driver.run(&spec).expect("no-op resume runs");
    assert_eq!(noop.fresh_points, 0);
    assert!(noop.results_match(&cold));
    assert_eq!(noop_driver.cache_stats().program_misses, 0);

    std::fs::remove_file(&path).ok();
}

/// The extracted Pareto frontier equals a brute-force O(n²) reference with
/// an independently written dominance check.
#[test]
fn pareto_frontier_matches_brute_force_reference() {
    let config = small_config();
    let driver = DseDriver::new(config).expect("valid config");
    let grid = ArchGrid::around(ArchConfig::paper())
        .with_macros(vec![2, 4])
        .with_rows(vec![32, 64])
        .with_frequencies(vec![250.0, 500.0]);
    let spec = DseSpec::new(grid, vec![ModelKind::AlexNet])
        .with_widths(vec![OperandWidth::Int4, OperandWidth::Int8])
        .with_sparsity(vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity]);
    let report = driver.run(&spec).expect("exploration runs");
    assert_eq!(report.entries.len(), 16);

    let frontier = report.pareto_frontier(ModelKind::AlexNet, SparsityConfig::HybridSparsity);
    assert!(!frontier.is_empty(), "a non-empty point set has a non-empty frontier");

    // Brute force: a candidate is on the frontier iff no other candidate is
    // at least as good on every objective and strictly better on one.
    let area = AreaModel::calibrated_28nm();
    let candidates: Vec<(usize, ParetoMetrics)> = report
        .entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            e.metrics(SparsityConfig::HybridSparsity, &area).map(|metrics| (i, metrics))
        })
        .collect();
    assert_eq!(candidates.len(), 16, "every entry simulated the hybrid configuration");
    let beats = |a: &ParetoMetrics, b: &ParetoMetrics| {
        let better_or_equal = a.latency_ms <= b.latency_ms
            && a.energy_uj <= b.energy_uj
            && a.area_mm2 <= b.area_mm2
            && a.fidelity_loss <= b.fidelity_loss;
        let strictly = a.latency_ms < b.latency_ms
            || a.energy_uj < b.energy_uj
            || a.area_mm2 < b.area_mm2
            || a.fidelity_loss < b.fidelity_loss;
        better_or_equal && strictly
    };
    let brute: Vec<usize> = candidates
        .iter()
        .filter(|(i, m)| !candidates.iter().any(|(j, other)| i != j && beats(other, m)))
        .map(|(i, _)| *i)
        .collect();

    let extracted: Vec<usize> = frontier.iter().map(|(i, _)| *i).collect();
    assert_eq!(extracted, brute, "frontier diverges from the O(n^2) reference");

    // Sanity: every non-frontier candidate is dominated by a frontier
    // member, and no frontier member dominates another.
    for (i, m) in &candidates {
        if extracted.contains(i) {
            assert!(
                !frontier.iter().any(|(j, fm)| j != i && fm.dominates(m)),
                "frontier member {i} is dominated"
            );
        } else {
            assert!(
                frontier.iter().any(|(_, fm)| fm.dominates(m)),
                "dropped candidate {i} is not dominated by any frontier member"
            );
        }
    }
}

/// The cross-model aggregate Pareto frontier — "which (width, geometry)
/// should serve this workload mix" — matches a from-scratch brute-force
/// reference: independently aggregated metrics, independently extracted
/// non-dominated set.
#[test]
fn aggregate_frontier_matches_a_brute_force_reference() {
    let config = small_config().without_fidelity();
    let driver = DseDriver::new(config).expect("valid config");
    let grid =
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4, 8]).with_rows(vec![32, 64]);
    let spec = DseSpec::new(grid, vec![ModelKind::AlexNet, ModelKind::MobileNetV2])
        .with_sparsity(vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity]);
    let report = driver.run(&spec).expect("exploration runs");
    assert_eq!(report.entries.len(), 12);

    // A traffic blend: twice as many MobileNetV2 requests as AlexNet.
    let mix = [(ModelKind::AlexNet, 1.0), (ModelKind::MobileNetV2, 2.0)];
    let sparsity = SparsityConfig::HybridSparsity;
    let candidates = report.aggregate_metrics(&mix, sparsity);
    assert_eq!(candidates.len(), 6, "one candidate per (width, geometry)");

    // Brute-force aggregation: recompute each candidate from the raw
    // entries with independent arithmetic.
    let area = AreaModel::calibrated_28nm();
    for candidate in &candidates {
        let mut latency = 0.0;
        let mut energy = 0.0;
        let mut loss = 0.0;
        let mut weight_total = 0.0;
        for &(kind, weight) in &mix {
            let entry = report
                .entries
                .iter()
                .find(|e| e.kind == kind && e.width == candidate.width && e.arch == candidate.arch)
                .expect("mix member present");
            let run = entry.result.run(sparsity).expect("hybrid simulated");
            latency += weight * run.latency_ms();
            energy += weight * run.total_energy_uj();
            loss += weight * entry.result.fidelity.as_ref().map_or(1.0, |f| 1.0 - f.top1_agreement);
            weight_total += weight;
        }
        assert!((candidate.metrics.latency_ms - latency).abs() < 1e-9, "latency aggregation");
        assert!((candidate.metrics.energy_uj - energy).abs() < 1e-9, "energy aggregation");
        assert!(
            (candidate.metrics.fidelity_loss - loss / weight_total).abs() < 1e-12,
            "fidelity aggregation"
        );
        assert!(
            (candidate.metrics.area_mm2 - area.total_mm2(&candidate.arch)).abs() < 1e-12,
            "area is the shared geometry's"
        );
    }

    // Brute-force frontier over the aggregated candidates with an
    // independently written dominance check.
    let beats = |a: &ParetoMetrics, b: &ParetoMetrics| {
        let no_worse = a.latency_ms <= b.latency_ms
            && a.energy_uj <= b.energy_uj
            && a.area_mm2 <= b.area_mm2
            && a.fidelity_loss <= b.fidelity_loss;
        let better = a.latency_ms < b.latency_ms
            || a.energy_uj < b.energy_uj
            || a.area_mm2 < b.area_mm2
            || a.fidelity_loss < b.fidelity_loss;
        no_worse && better
    };
    let brute: Vec<&MixCandidate> = candidates
        .iter()
        .filter(|c| !candidates.iter().any(|other| beats(&other.metrics, &c.metrics)))
        .collect();
    let frontier = report.aggregate_pareto_frontier(&mix, sparsity);
    assert!(!frontier.is_empty());
    assert_eq!(
        frontier.iter().collect::<Vec<_>>(),
        brute,
        "aggregate frontier diverges from the O(n^2) reference"
    );

    // Degenerate mixes behave: an empty mix (or all-zero weights)
    // aggregates nothing, a missing model yields no candidates.
    assert!(report.aggregate_metrics(&[], sparsity).is_empty());
    assert!(report.aggregate_metrics(&[(ModelKind::AlexNet, 0.0)], sparsity).is_empty());
    assert!(report.aggregate_metrics(&[(ModelKind::Vgg19, 1.0)], sparsity).is_empty());
}

/// Structured failure shapes: infeasible grids are rejected before any
/// work, and a snapshot recorded under a different spec refuses to resume
/// instead of silently mixing results.
#[test]
fn infeasible_grids_and_foreign_snapshots_are_structured_errors() {
    let config = small_config().without_fidelity();

    // Zero macros: rejected at enumeration, with the point named.
    let driver = DseDriver::new(config).expect("valid config");
    let bad = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![4, 0]),
        vec![ModelKind::AlexNet],
    );
    let err = driver.run(&bad).expect_err("zero macros must be rejected");
    assert!(err.to_string().contains("infeasible"), "{err}");

    // A weight buffer below one tile is equally infeasible.
    let bad = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_rows(vec![64]).with_weight_buffers(vec![16]),
        vec![ModelKind::AlexNet],
    );
    let err = driver.run(&bad).expect_err("undersized buffer must be rejected");
    assert!(err.to_string().contains("weight buffer"), "{err}");

    // An oversized cross product never starts executing.
    let bad = DseSpec::new(
        ArchGrid::around(ArchConfig::paper())
            .with_macros((1..=20).collect())
            .with_rows((1..=20).map(|i| i * 8).collect())
            .with_frequencies((1..=20).map(|i| f64::from(i) * 50.0).collect()),
        vec![ModelKind::AlexNet],
    );
    let err = driver.run(&bad).expect_err("oversized grid must be rejected");
    assert!(err.to_string().contains("maximum"), "{err}");

    // Resuming a snapshot that answers a different spec is refused.
    let path = temp_path("foreign.json");
    let spec_a = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![2]),
        vec![ModelKind::MobileNetV2],
    )
    .with_sparsity(vec![SparsityConfig::DenseBaseline]);
    let driver = DseDriver::new(config).expect("valid config").with_snapshot(&path);
    driver.run(&spec_a).expect("spec A runs");
    let spec_b = spec_a.clone().with_sparsity(vec![SparsityConfig::HybridSparsity]);
    let err = driver.run(&spec_b).expect_err("foreign snapshot must be refused");
    assert!(err.to_string().contains("different spec"), "{err}");

    std::fs::remove_file(&path).ok();
}
