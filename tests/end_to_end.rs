//! Workspace integration test: the full co-design pipeline on a small CNN.

use db_pim::prelude::*;

fn result_for_seed(seed: u64) -> CodesignResult {
    let mut config = PipelineConfig::fast();
    config.seed = seed;
    config.evaluation_images = 6;
    let pipeline = Pipeline::new(config).expect("valid config");
    let model = zoo::tiny_cnn(10, seed).expect("model builds");
    pipeline.run_model(&model).expect("pipeline runs")
}

#[test]
fn pipeline_produces_all_four_runs_with_consistent_work() {
    let result = result_for_seed(1);
    assert_eq!(result.runs.len(), 4);
    let macs = result.baseline().total_macs();
    assert!(macs > 0);
    for run in &result.runs {
        assert_eq!(run.total_macs(), macs, "functional work differs for {}", run.sparsity);
        assert!(run.total_cycles() > 0);
        assert!(run.total_energy_uj() > 0.0);
    }
}

#[test]
fn sparsity_configurations_are_ordered_as_in_fig7() {
    let result = result_for_seed(2);
    let input = result.speedup(SparsityConfig::InputSparsity);
    let weight = result.speedup(SparsityConfig::WeightSparsity);
    let hybrid = result.speedup(SparsityConfig::HybridSparsity);
    assert!(input > 1.0, "input sparsity speedup {input}");
    assert!(weight > 1.5, "weight sparsity speedup {weight}");
    assert!(hybrid > weight && hybrid > input, "hybrid {hybrid}, weight {weight}, input {input}");
    assert!(hybrid < 16.0, "hybrid speedup {hybrid} exceeds the architectural ceiling");

    let e_weight = result.energy_saving(SparsityConfig::WeightSparsity);
    let e_hybrid = result.energy_saving(SparsityConfig::HybridSparsity);
    assert!(e_weight > 0.2 && e_weight < 0.95, "weight energy saving {e_weight}");
    assert!(e_hybrid > e_weight, "hybrid saving {e_hybrid} vs weight {e_weight}");
}

#[test]
fn algorithm_statistics_behave_like_fig2a_and_table3() {
    let result = result_for_seed(3);
    let stats = &result.fta_stats;
    assert!(stats.binary_zero_ratio() > 0.5);
    assert!(stats.csd_zero_ratio() >= stats.binary_zero_ratio());
    assert!(stats.fta_zero_ratio() >= stats.csd_zero_ratio());
    assert!(result.utilization() > 0.7 && result.utilization() <= 1.0);
    let fidelity = result.fidelity.expect("fidelity evaluation enabled");
    assert!(fidelity.top1_agreement >= 0.5, "agreement {}", fidelity.top1_agreement);
    assert!(fidelity.images == 6);
}

#[test]
fn input_sparsity_profile_matches_pim_layers() {
    let result = result_for_seed(4);
    let pim_layers = result.summary.pim_layer_count();
    assert_eq!(result.input_sparsity.len(), pim_layers);
    assert!(result.input_sparsity.mean_ratio() > 0.05);
}

#[test]
fn codesign_result_serializes_to_json_and_back() {
    let result = result_for_seed(5);
    let json = serde_json::to_string(&result).expect("serializes");
    assert!(json.contains("tiny_cnn"));
    let parsed: CodesignResult = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(parsed.model_name, result.model_name);
    assert_eq!(parsed.runs.len(), result.runs.len());
    assert_eq!(parsed.baseline().total_cycles(), result.baseline().total_cycles());
}

#[test]
fn pipeline_is_deterministic_for_a_fixed_seed() {
    let a = result_for_seed(6);
    let b = result_for_seed(6);
    assert_eq!(a.baseline().total_cycles(), b.baseline().total_cycles());
    assert_eq!(
        a.run(SparsityConfig::HybridSparsity).unwrap().total_cycles(),
        b.run(SparsityConfig::HybridSparsity).unwrap().total_cycles()
    );
    assert_eq!(a.fta_stats.utilization(), b.fta_stats.utilization());
}
