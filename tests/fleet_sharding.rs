//! The fleet orchestrator's contract:
//!
//! * every partition strategy covers the spec with no duplicates and no
//!   gaps;
//! * a merged fleet report is bit-identical (timestamps ignored) to a
//!   single `DseDriver` run of the same spec;
//! * killing a worker mid-run still completes with every point exactly
//!   once (straggler reassignment + worker retirement);
//! * adversarial shard directories — overlapping shards, half-written
//!   snapshots, snapshots answering a different spec — resume cleanly,
//!   are skipped with a diagnostic, or error, respectively.

use std::collections::HashSet;
use std::sync::mpsc;
use std::time::Duration;

use db_pim::prelude::*;
use dbpim_fleet::{
    FleetConfig, FleetDriver, FleetError, FleetEvent, ShardPlan, ShardStrategy, WorkerSpec,
};
use dbpim_serve::{ServeConfig, Server};

fn small_config() -> PipelineConfig {
    let mut config = PipelineConfig::fast().without_fidelity();
    config.width_mult = 0.25;
    config.calibration_images = 1;
    config.classes = 10;
    config
}

fn small_spec() -> DseSpec {
    DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]).with_rows(vec![32, 64]),
        vec![ModelKind::AlexNet, ModelKind::MobileNetV2],
    )
    .with_sparsity(vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity])
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dbpim-fleet-test-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Every strategy partitions the spec's canonical point list completely:
/// each point in exactly one shard, across a range of worker counts.
#[test]
fn every_strategy_covers_the_spec_with_no_duplicates_or_gaps() {
    let spec = small_spec().with_widths(vec![OperandWidth::Int4, OperandWidth::Int8]);
    let points = spec.points(OperandWidth::Int8, PruningSpec::none()).expect("feasible spec");
    assert_eq!(points.len(), 16, "2 models x 2 widths x 4 geometries");
    for strategy in ShardStrategy::all() {
        for workers in [1, 2, 3, 7, 16, 21] {
            let plan = ShardPlan::partition(&points, workers, strategy);
            assert!(
                plan.is_complete_partition(),
                "{strategy} over {workers} workers is not a complete partition"
            );
            // The invariant the helper checks, re-asserted independently:
            // indices 0..N each appear exactly once across all shards.
            let mut seen = HashSet::new();
            for shard in &plan.shards {
                for &point in &shard.points {
                    assert!(seen.insert(point), "{strategy}: point {point} in two shards");
                }
            }
            assert_eq!(seen.len(), points.len(), "{strategy}: gaps over {workers} workers");
        }
    }
}

/// The headline bit-identity contract: a fleet of local workers produces a
/// merged report whose results match a single-driver run exactly, for
/// every partition strategy.
#[test]
fn fleet_merge_is_bit_identical_to_a_single_driver_run() {
    let config = small_config();
    let spec = small_spec();
    let single = DseDriver::new(config).expect("valid config").run(&spec).expect("single run");
    assert!(single.is_complete());

    for strategy in ShardStrategy::all() {
        let fleet_config = FleetConfig::new(config, vec![WorkerSpec::Local, WorkerSpec::Local])
            .with_strategy(strategy);
        let outcome = FleetDriver::new(fleet_config).run(&spec).expect("fleet run");
        assert!(outcome.report.is_complete(), "{strategy}: incomplete report");
        assert!(
            outcome.report.results_match(&single),
            "{strategy}: merged fleet report diverges from the single-driver run"
        );
        // Exactly-once: no duplicate keys survived the merge.
        let keys: HashSet<DsePointKey> =
            outcome.report.entries.iter().map(|e| e.canonical_key()).collect();
        assert_eq!(keys.len(), outcome.report.entries.len(), "{strategy}: duplicate entries");
        assert_eq!(outcome.stats.fresh_points, single.entries.len());
        assert_eq!(outcome.stats.resumed_points, 0);
        let worked: usize = outcome.stats.workers.iter().map(|w| w.points).sum();
        assert_eq!(worked, single.entries.len(), "{strategy}: worker counters disagree");
    }
}

/// Killing a serve daemon mid-run retires its remote worker; the local
/// worker steals the unfinished points and the merged report still covers
/// every point exactly once, bit-identical to a single-driver run.
#[test]
fn killing_a_worker_mid_run_reassigns_its_points() {
    let config = small_config();
    let spec = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4, 8]).with_rows(vec![32, 64]),
        vec![ModelKind::AlexNet, ModelKind::MobileNetV2],
    )
    .with_sparsity(vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity]);
    let total = spec.points(config.operand_width, config.pruning).expect("feasible").len();
    assert_eq!(total, 12);

    // The daemon requires auth, so this test also proves remote workers
    // authenticate on every (re)connect before claiming points.
    let handle = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        poll_interval: Duration::from_millis(50),
        pipeline: config,
        auth_token: Some("fleet-secret".to_string()),
        ..ServeConfig::default()
    })
    .expect("server spawns");
    let addr = handle.addr().to_string();

    // Kill the daemon as soon as the remote worker (index 0) completes its
    // first point — deterministically "mid-run" because its contiguous
    // shard holds half the grid.
    let (kill_tx, kill_rx) = mpsc::channel::<()>();
    let killer = std::thread::spawn(move || {
        // Even if the signal never arrives (remote worker dead on arrival),
        // shut the daemon down so the test cannot leak it.
        let _ = kill_rx.recv_timeout(Duration::from_secs(120));
        handle.request_shutdown();
        handle.join()
    });

    let fleet_config = FleetConfig::new(config, vec![WorkerSpec::Remote(addr), WorkerSpec::Local])
        .with_strategy(ShardStrategy::Contiguous)
        .with_point_timeout(Duration::from_secs(30))
        .with_fleet_id("kill-test")
        .with_auth_token("fleet-secret");
    let driver = FleetDriver::new(fleet_config).with_observer(move |event| {
        if let FleetEvent::PointDone { worker: 0, .. } = event {
            let _ = kill_tx.send(());
        }
    });
    let outcome = driver.run(&spec).expect("fleet survives the worker kill");
    killer.join().expect("killer thread").expect("daemon exits cleanly");

    assert!(outcome.report.is_complete(), "killed worker left gaps");
    let keys: HashSet<DsePointKey> =
        outcome.report.entries.iter().map(|e| e.canonical_key()).collect();
    assert_eq!(keys.len(), total, "a point ran twice into the merged report");

    // The remote worker died before finishing its 6-point shard, so the
    // local worker must have stolen work; the run records both.
    let remote = &outcome.stats.workers[0];
    let local = &outcome.stats.workers[1];
    assert!(remote.points < 6, "remote finished its whole shard before the kill: {remote:?}");
    assert!(remote.retired.is_some(), "remote worker never retired: {remote:?}");
    assert!(local.points > 6, "local worker stole nothing: {local:?}");
    assert!(outcome.stats.reassigned_points >= 1, "{:?}", outcome.stats);
    assert!(outcome.stats.retried_attempts >= 1, "{:?}", outcome.stats);

    // And none of it changed the numbers.
    let single = DseDriver::new(config).expect("valid config").run(&spec).expect("single run");
    assert!(outcome.report.results_match(&single), "kill/reassign changed results");
}

/// Overlapping shard snapshots dedupe on adoption, a half-written snapshot
/// is skipped with a diagnostic (and recomputed), and the resumed fleet
/// recomputes only the genuinely missing points.
#[test]
fn overlapping_and_half_written_shard_snapshots_resume_cleanly() {
    let config = small_config();
    let spec = small_spec();
    let single = DseDriver::new(config).expect("valid config").run(&spec).expect("single run");
    let total = single.entries.len();
    assert_eq!(total, 8);

    let dir = temp_dir("adversarial");
    // Shard 0 and shard 1 snapshots overlap at entry 2; together they cover
    // entries 0..5.
    let mut shard_a = DseReport::empty(spec.clone(), total);
    shard_a.entries = single.entries[0..3].to_vec();
    shard_a.save(dir.join("shard-000.json")).expect("shard a saves");
    let mut shard_b = DseReport::empty(spec.clone(), total);
    shard_b.entries = single.entries[2..5].to_vec();
    shard_b.save(dir.join("shard-001.json")).expect("shard b saves");
    // A half-written snapshot, as a kill mid-`write` would leave without
    // the atomic rename: valid prefix, torn tail.
    std::fs::write(dir.join("shard-002.json"), "{\"spec\":{\"grid\":{\"base\"")
        .expect("torn snapshot writes");

    let fleet_config = FleetConfig::new(config, vec![WorkerSpec::Local])
        .with_snapshot_dir(&dir)
        .with_strategy(ShardStrategy::RoundRobin);
    let outcome = FleetDriver::new(fleet_config).run(&spec).expect("resume runs");

    assert!(outcome.report.results_match(&single), "resumed fleet diverges");
    assert_eq!(outcome.stats.resumed_points, 5, "overlap was not deduped: {:?}", outcome.stats);
    assert_eq!(outcome.stats.fresh_points, total - 5, "resume recomputed adopted points");
    assert!(
        outcome.stats.diagnostics.iter().any(|d| d.contains("shard-002")),
        "torn snapshot was not diagnosed: {:?}",
        outcome.stats.diagnostics
    );

    // The run left a fresh, valid merged snapshot behind.
    let merged = DseReport::load(dir.join("merged.json")).expect("merged snapshot loads");
    assert!(merged.results_match(&single));
    std::fs::remove_dir_all(&dir).ok();
}

/// A shard snapshot recorded under a different spec refuses to resume —
/// a structured error, never a silent partial mix.
#[test]
fn mismatched_spec_shards_are_refused() {
    let config = small_config();
    let spec = small_spec();
    let foreign_spec = small_spec().with_sparsity(vec![SparsityConfig::HybridSparsity]);
    let dir = temp_dir("mismatch");
    DseReport::empty(foreign_spec, 4).save(dir.join("shard-000.json")).expect("foreign saves");

    let fleet_config = FleetConfig::new(config, vec![WorkerSpec::Local]).with_snapshot_dir(&dir);
    let err = FleetDriver::new(fleet_config).run(&spec).expect_err("foreign shard must refuse");
    assert!(matches!(err, FleetError::SnapshotSpecMismatch { .. }), "{err}");
    assert!(err.to_string().contains("different spec"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A fleet whose only worker is a dead endpoint stalls with a structured
/// error naming the diagnostics instead of hanging or panicking.
#[test]
fn a_fleet_of_only_dead_endpoints_stalls_with_diagnostics() {
    let config = small_config();
    let spec = DseSpec::new(ArchGrid::around(ArchConfig::paper()), vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::HybridSparsity]);
    // Port 9 (discard) on loopback: nothing is listening.
    let fleet_config =
        FleetConfig::new(config, vec![WorkerSpec::Remote("127.0.0.1:9".to_string())])
            .with_point_timeout(Duration::from_millis(300));
    let err = FleetDriver::new(fleet_config).run(&spec).expect_err("dead fleet must stall");
    match &err {
        FleetError::Stalled { completed, total, diagnostics } => {
            assert_eq!(*completed, 0);
            assert_eq!(*total, 1);
            assert!(
                diagnostics.iter().any(|d| d.contains("127.0.0.1:9")),
                "diagnostics do not name the dead endpoint: {diagnostics:?}"
            );
        }
        other => panic!("expected Stalled, got {other}"),
    }
}
