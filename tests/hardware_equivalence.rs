//! Cross-crate equivalence: the bit-accurate PIM macro computes exactly the
//! integer arithmetic the quantized model and the FTA metadata describe.

use db_pim::prelude::*;
use dbpim_arch::ArchConfig as MacroConfig;
use dbpim_fta::metadata::{FilterMetadata, LayerMetadata};
use dbpim_fta::ModelApprox as Approx;

/// Builds a quantized tiny CNN together with its FTA approximation and a
/// quantized input image.
fn setup(seed: u64) -> (QuantizedModel, Approx, Tensor<f32>) {
    let model = zoo::tiny_cnn(10, seed).expect("model builds");
    let mut gen = TensorGenerator::new(seed + 100);
    let (calibration, _) = gen.labelled_batch(2, 3, 32, 32, 10).expect("batch");
    let quantized = QuantizedModel::quantize(&model, &calibration).expect("quantizes");
    let approx = Approx::from_quantized(&quantized).expect("approximates");
    (quantized, approx, calibration[0].clone())
}

#[test]
fn macro_reproduces_the_fc_layer_integer_accumulation() {
    let (quantized, approx, image) = setup(7);
    // The last PIM node of the tiny CNN is the fully-connected classifier.
    let fc_id = *quantized.pim_node_ids().last().expect("has PIM layers");
    let fc_layer = approx.layer(fc_id).expect("fc approximated");

    // Its input activations: the output of the producing node, quantized.
    let outputs = quantized.forward_all(&image).expect("runs");
    let producer = quantized.nodes()[fc_id].inputs[0];
    let inputs: Vec<i8> = outputs[producer].data().to_vec();
    let zero_point = quantized.nodes()[producer].output_qp.zero_point();

    // Execute every filter on the bit-accurate macro, eight at a time.
    let metadata: Vec<FilterMetadata> = fc_layer
        .filters()
        .iter()
        .enumerate()
        .map(|(i, f)| FilterMetadata::from_filter(i, f))
        .collect();
    let mut macro_outputs: Vec<i64> = Vec::new();
    for chunk in metadata.chunks(8) {
        let mut pim = PimMacro::new(MacroConfig::paper()).expect("macro builds");
        let exec =
            pim.execute_sparse_tile(chunk, &inputs, &InputPreprocessor::new()).expect("tile fits");
        macro_outputs.extend(exec.outputs);
    }

    // Reference: the same integer accumulation the quantized executor uses,
    // acc = sum (q_x - zp) * q_w, rebuilt from the approximated weights.
    for (f, filter) in fc_layer.filters().iter().enumerate() {
        let weight_sum: i64 = filter.values().iter().map(|&w| i64::from(w)).sum();
        let reference: i64 = filter
            .values()
            .iter()
            .zip(&inputs)
            .map(|(&w, &x)| i64::from(w) * (i64::from(x) - i64::from(zero_point)))
            .sum();
        // The macro multiplies against the raw INT8 pattern; the zero-point
        // correction `zp * Σw` is a scalar the post-processing applies.
        let adjusted = macro_outputs[f] - i64::from(zero_point) * weight_sum;
        assert_eq!(adjusted, reference, "filter {f}");
    }
}

#[test]
fn metadata_reconstruction_is_lossless_for_every_pim_layer() {
    let (quantized, approx, _) = setup(8);
    for &node_id in &quantized.pim_node_ids() {
        let layer = approx.layer(node_id).expect("layer approximated");
        let metadata = LayerMetadata::from_layer(layer);
        let approx_tensor = layer.approximated_tensor();
        let filter_len = layer.filter_len();
        for (f, filter_meta) in metadata.filters.iter().enumerate() {
            for (j, slots) in filter_meta.weights.iter().enumerate() {
                let expected = i32::from(approx_tensor.data()[f * filter_len + j]);
                assert_eq!(slots.reconstruct(), expected, "node {node_id}, filter {f}, weight {j}");
            }
        }
        assert!(metadata.utilization() > 0.0 && metadata.utilization() <= 1.0);
    }
}

#[test]
fn fta_weight_substitution_changes_only_pim_weights() {
    let (quantized, approx, image) = setup(9);
    let fta_model = approx.apply(&quantized).expect("applies");
    assert_eq!(fta_model.nodes().len(), quantized.nodes().len());
    // Non-PIM nodes are untouched.
    for (a, b) in quantized.nodes().iter().zip(fta_model.nodes()) {
        if !a.layer.is_pim_layer() {
            assert_eq!(a, b, "non-PIM node {} changed", a.name);
        }
    }
    // The approximated model still runs and produces the same output shape.
    let original = quantized.forward(&image).expect("baseline runs");
    let substituted = fta_model.forward(&image).expect("fta model runs");
    assert_eq!(original.shape(), substituted.shape());
}
