//! Differential tests for joint value-level + bit-level sparsity:
//!
//! * `pruning = 0.0` (in any spelling) is provably byte-identical to the
//!   historical unpruned path — same entries, same serialized bytes, no
//!   `pruning` key anywhere in the JSON;
//! * legacy snapshots that predate the pruning axis still parse, with every
//!   entry defaulting to the identity spec;
//! * weights pruned to exactly zero survive the FTA encode/decode round
//!   trip losslessly (zero in, zero out, no allocated blocks behind them);
//! * save → kill → resume over a pruning grid recomputes only the missing
//!   points;
//! * active pruning shrinks the compiled DB-PIM macro work while leaving
//!   the dense baseline untouched.

use db_pim::prelude::*;

fn small_config() -> PipelineConfig {
    let mut config = PipelineConfig::fast();
    config.width_mult = 0.25;
    config.calibration_images = 1;
    config.evaluation_images = 2;
    config
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dbpim-joint-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Every spelling of "no pruning" — the config default, an explicit
/// zero-fraction spec (either mode), and an explicit identity in the sweep
/// spec — produces bit-identical entries that serialize to the exact bytes
/// the unpruned code path has always produced.
#[test]
fn fraction_zero_pruning_is_byte_identical_to_the_unpruned_path() {
    let spec = SweepSpec::new(vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity])
        .with_widths(vec![OperandWidth::Int4, OperandWidth::Int8]);

    let baseline =
        BatchRunner::new(small_config()).expect("valid config").run(&spec).expect("baseline");

    // Identity pruning via the pipeline config, in both modes.
    for identity in [PruningSpec::unstructured(0.0), PruningSpec::structured(0.0)] {
        assert!(!identity.is_active());
        let config = small_config().with_pruning(identity);
        let report = BatchRunner::new(config).expect("valid config").run(&spec).expect("runs");
        assert_eq!(report.entries, baseline.entries, "{identity:?} changed results");
    }

    // Identity pruning via the sweep spec.
    let explicit = spec.clone().with_pruning(vec![PruningSpec::none()]);
    let report =
        BatchRunner::new(small_config()).expect("valid config").run(&explicit).expect("runs");
    assert_eq!(report.entries, baseline.entries);

    // Byte identity: identity entries serialize without any `pruning` key,
    // so the on-disk/wire shape equals the pre-pruning format exactly.
    let baseline_json = serde_json::to_string(&baseline.entries).expect("serializes");
    let explicit_json = serde_json::to_string(&report.entries).expect("serializes");
    assert_eq!(baseline_json, explicit_json, "identity pruning leaked into the bytes");
    assert!(!baseline_json.contains("pruning"), "unpruned entries must omit the field");

    // The specs themselves follow the same rule: no pruning requested means
    // no `pruning` key on the wire.
    let spec_json = serde_json::to_string(&spec).expect("serializes");
    assert!(!spec_json.contains("pruning"));
    let active_json =
        serde_json::to_string(&spec.clone().with_pruning(vec![PruningSpec::unstructured(0.3)]))
            .expect("serializes");
    assert!(active_json.contains("pruning"), "active pruning must be recorded");
}

/// Reports and specs saved before the pruning axis existed parse today,
/// with the missing field defaulting to the identity spec everywhere.
#[test]
fn legacy_snapshots_without_a_pruning_field_still_parse() {
    let runner = BatchRunner::new(small_config()).expect("valid config");
    let report = runner
        .run(
            &SweepSpec::new(vec![ModelKind::AlexNet])
                .with_sparsity(vec![SparsityConfig::HybridSparsity]),
        )
        .expect("runs");

    // An unpruned report's own bytes *are* the legacy format (no `pruning`
    // key), so parsing them is exactly the legacy-snapshot scenario.
    let json = serde_json::to_string(&report).expect("serializes");
    assert!(!json.contains("pruning"));
    let back: SweepReport = serde_json::from_str(&json).expect("legacy report parses");
    assert_eq!(back, report);
    assert!(back.entries.iter().all(|e| e.pruning == PruningSpec::none()));

    // Same for DSE specs: pre-pruning spec bytes round-trip to an empty
    // pruning axis, and a pruning-carrying spec survives its own trip.
    let grid = ArchGrid::around(ArchConfig::paper()).with_macros(vec![2]).with_rows(vec![32]);
    let legacy_spec = DseSpec::new(grid.clone(), vec![ModelKind::AlexNet]);
    let spec_json = serde_json::to_string(&legacy_spec).expect("serializes");
    assert!(!spec_json.contains("pruning"));
    let parsed: DseSpec = serde_json::from_str(&spec_json).expect("legacy spec parses");
    assert!(parsed.pruning.is_empty());

    let pruned_spec = DseSpec::new(grid, vec![ModelKind::AlexNet])
        .with_pruning(vec![PruningSpec::none(), PruningSpec::structured(0.5)]);
    let round: DseSpec =
        serde_json::from_str(&serde_json::to_string(&pruned_spec).expect("serializes"))
            .expect("parses");
    assert_eq!(round.pruning, pruned_spec.pruning);
}

/// Weights pruned to exactly `0.0` quantize to `0`, store no dyadic blocks,
/// and decode back to exactly `0` — the FTA round trip is lossless for the
/// value-sparse half of the joint scheme.
#[test]
fn pruned_zero_weights_survive_the_fta_round_trip_losslessly() {
    let pruning = PruningSpec::unstructured(0.5);
    let config = small_config().with_pruning(pruning);
    let session = SimSession::new(config).expect("valid config");
    let artifacts = session.artifacts(ModelKind::AlexNet).expect("prepares");
    let approx = artifacts.approx();

    // The pruned model actually carries the requested value sparsity...
    let pruned_model = session.model(ModelKind::AlexNet).expect("model").pruned(pruning);
    assert!(pruned_model.weight_zero_fraction() >= 0.45, "pruning was not applied");
    // ...and the quantized/approximated weights see it too (quantization can
    // only add zeros, never remove them).
    assert!(approx.value_zero_fraction() >= 0.45, "value sparsity lost before FTA");

    let mut zeros_checked = 0usize;
    for layer in approx.layers() {
        let filter_len = layer.filter_len();
        let originals = layer.original_values();
        let counts = layer.filter_nonzero_counts();
        assert_eq!(counts.len(), layer.filter_count());
        for (f, filter) in layer.filters().iter().enumerate() {
            let original = &originals[f * filter_len..(f + 1) * filter_len];
            let decoded = filter.values();
            assert_eq!(decoded.len(), filter_len);
            assert_eq!(
                counts[f],
                original.iter().filter(|v| **v != 0).count(),
                "recorded non-zero count diverges from the quantized weights"
            );
            for (o, d) in original.iter().zip(decoded) {
                if *o == 0 {
                    assert_eq!(*d, 0, "a pruned zero decoded to a non-zero value");
                    zeros_checked += 1;
                }
            }
        }
    }
    assert!(zeros_checked > 0, "the pruned model exposed no zero weights to FTA");
}

/// Save → kill → resume over a joint (pruning × geometry) grid: a torn
/// snapshot is completed by recomputing only the missing points, and the
/// resumed report matches a cold run.
#[test]
fn resume_over_a_pruning_grid_recomputes_only_missing_points() {
    let config = small_config().without_fidelity();
    let path = temp_path("pruning-resume.json");
    let grid = ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]).with_rows(vec![64]);
    let spec = DseSpec::new(grid, vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::HybridSparsity])
        .with_pruning(vec![PruningSpec::none(), PruningSpec::unstructured(0.5)]);

    let cold_driver =
        DseDriver::new(config).expect("valid config").with_snapshot(&path).with_batch_size(2);
    let cold = cold_driver.run(&spec).expect("cold run");
    assert_eq!(cold.total_points, 4, "2 prunings x 2 geometries");
    assert_eq!(cold.fresh_points, 4);
    // Both pruning variants are present, and only the active one is
    // recorded in the snapshot's bytes.
    let json = std::fs::read_to_string(&path).expect("snapshot readable");
    assert!(json.contains("pruning"));
    assert_eq!(cold.entries.iter().filter(|e| e.pruning.is_active()).count(), 2);

    // "Kill" the run after the first batch and resume with a fresh driver.
    let saved = DseReport::load(&path).expect("snapshot loads");
    let mut torn = saved.clone();
    torn.entries.truncate(2);
    torn.save(&path).expect("torn snapshot saves");

    let resume_driver =
        DseDriver::new(config).expect("valid config").with_snapshot(&path).with_batch_size(2);
    let resumed = resume_driver.run(&spec).expect("resume runs");
    assert_eq!(resumed.fresh_points, 2, "resume recomputed more than the missing points");
    assert!(resumed.is_complete());
    assert!(resumed.results_match(&cold), "resumed results diverge from the cold run");
    assert_eq!(resumed.entries[0], torn.entries[0], "adopted entries must be verbatim");
    assert_eq!(resumed.entries[1], torn.entries[1]);

    // A second resume finds nothing to do.
    let noop_driver = DseDriver::new(config).expect("valid config").with_snapshot(&path);
    let noop = noop_driver.run(&spec).expect("no-op resume");
    assert_eq!(noop.fresh_points, 0);
    assert!(noop.results_match(&cold));

    std::fs::remove_file(&path).ok();
}

/// Active pruning shrinks the compiled DB-PIM instruction stream — fewer
/// weights loaded, and (for structured pruning) fewer filters ever reaching
/// the array — while the dense baseline maps the same nominal shape as the
/// unpruned model.
#[test]
fn active_pruning_reduces_compiled_macro_work() {
    let arch = small_config().arch;
    let loaded_weights = |program: &ModelProgram| -> u64 {
        program
            .layers
            .iter()
            .flat_map(|l| &l.instructions)
            .filter_map(|i| match i {
                dbpim_compiler::Instruction::LoadWeights {
                    filters, weights_per_filter, ..
                } => Some(u64::from(*filters) * u64::from(*weights_per_filter)),
                _ => None,
            })
            .sum()
    };
    let computed_filters = |program: &ModelProgram| -> u64 {
        program
            .layers
            .iter()
            .flat_map(|l| &l.instructions)
            .filter_map(|i| match i {
                dbpim_compiler::Instruction::Compute { filters, .. } => Some(u64::from(*filters)),
                _ => None,
            })
            .sum()
    };

    let baseline_session = SimSession::new(small_config()).expect("valid config");
    let baseline = baseline_session
        .artifacts(ModelKind::AlexNet)
        .expect("prepares")
        .programs(arch)
        .expect("compiles");

    for pruning in [PruningSpec::unstructured(0.5), PruningSpec::structured(0.5)] {
        let session = SimSession::new(small_config().with_pruning(pruning)).expect("valid config");
        let pruned = session
            .artifacts(ModelKind::AlexNet)
            .expect("prepares")
            .programs(arch)
            .expect("compiles");

        assert!(
            loaded_weights(&pruned.sparse) < loaded_weights(&baseline.sparse),
            "{pruning:?} did not reduce the DB-PIM weight loads"
        );
        if pruning.mode == PruningMode::Structured {
            assert!(
                computed_filters(&pruned.sparse) < computed_filters(&baseline.sparse),
                "pruned-away filters still reach the array"
            );
        }
        // The dense baseline ignores value sparsity by construction: the
        // pruned model maps to the identical dense instruction stream.
        assert_eq!(
            pruned.dense.layers.iter().map(|l| l.instructions.clone()).collect::<Vec<_>>(),
            baseline.dense.layers.iter().map(|l| l.instructions.clone()).collect::<Vec<_>>(),
            "{pruning:?} perturbed the dense baseline"
        );
    }
}
