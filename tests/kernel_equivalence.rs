//! Differential suite: the word-packed bit-plane macro kernels must be
//! bit-identical — outputs *and* every `MacroComputeStats` counter — to the
//! cell-at-a-time `ScalarPimMacro` reference, over randomized filters ×
//! operand widths × sparsity configurations × ragged tail geometries.

use dbpim_arch::{ArchConfig, ArchError, InputPreprocessor, PimMacro, ScalarPimMacro};
use dbpim_csd::OperandWidth;
use dbpim_fta::metadata::FilterMetadata;
use dbpim_fta::{FilterApprox, QueryTables};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Geometries covering the paper layout, a ragged small array whose tiles
/// rarely divide evenly, and a wide array whose compartment masks span more
/// than one `u64` word.
fn geometries() -> Vec<ArchConfig> {
    let paper = ArchConfig::paper();
    let mut ragged = ArchConfig::paper();
    ragged.compartments_per_macro = 5;
    ragged.dbmus_per_compartment = 7;
    ragged.rows_per_dbmu = 9;
    let mut wide = ArchConfig::paper();
    wide.compartments_per_macro = 80;
    wide.rows_per_dbmu = 8;
    vec![paper, ragged, wide]
}

/// Input vectors of the given length under different sparsity regimes.
fn input_cases(rng: &mut ChaCha8Rng, len: usize) -> Vec<Vec<i8>> {
    vec![
        (0..len).map(|_| rng.gen()).collect(),
        (0..len).map(|_| rng.gen_range(0i8..=7)).collect(),
        (0..len).map(|i| if i % 3 == 0 { rng.gen() } else { 0 }).collect(),
        vec![0i8; len],
    ]
}

fn sparse_filters(
    rng: &mut ChaCha8Rng,
    width: OperandWidth,
    threshold: u32,
    count: usize,
    len: usize,
) -> Vec<FilterMetadata> {
    let tables = QueryTables::for_width(width);
    (0..count)
        .map(|i| {
            let raw: Vec<i32> =
                (0..len).map(|_| rng.gen_range(width.min_value()..=width.max_value())).collect();
            let approx = FilterApprox::approximate_with_threshold(&raw, threshold, &tables)
                .expect("in-range weights approximate");
            FilterMetadata::from_filter(i, &approx)
        })
        .collect()
}

/// Asserts both implementations produce the same `TileExecution` (including
/// every stats field) for a sparse tile, via the monolithic entry point and
/// via the load/execute split.
fn assert_sparse_equivalent(
    config: &ArchConfig,
    filters: &[FilterMetadata],
    inputs: &[i8],
    label: &str,
) {
    for ipu in [InputPreprocessor::new(), InputPreprocessor::without_sparsity()] {
        let mut planes = PimMacro::new(*config).unwrap();
        let mut scalar = ScalarPimMacro::new(*config).unwrap();
        let fast = planes.execute_sparse_tile(filters, inputs, &ipu).unwrap();
        let slow = scalar.execute_sparse_tile(filters, inputs, &ipu).unwrap();
        assert_eq!(fast, slow, "monolithic sparse mismatch: {label}");

        let fast_writes = planes.load_sparse_tile(filters).unwrap();
        let slow_writes = scalar.load_sparse_tile(filters).unwrap();
        assert_eq!(fast_writes, slow_writes, "sparse load writes mismatch: {label}");
        assert_eq!(fast_writes, slow.stats.cell_writes, "split vs monolithic writes: {label}");
        let fast_split = planes.execute_loaded(inputs, &ipu).unwrap();
        let slow_split = scalar.execute_loaded(inputs, &ipu).unwrap();
        assert_eq!(fast_split, slow_split, "split sparse mismatch: {label}");
        assert_eq!(fast_split.stats.cell_writes, 0, "split pays no write cost: {label}");
        let mut patched = fast_split.stats;
        patched.cell_writes = slow.stats.cell_writes;
        assert_eq!(patched, slow.stats, "split stats drift from monolithic: {label}");
    }
}

#[test]
fn sparse_tiles_are_bit_identical_across_widths_and_geometries() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    for config in geometries() {
        let compartments = config.compartments_per_macro;
        for width in OperandWidth::all() {
            for threshold in [1u32, 2] {
                let capacity = config.filters_per_macro(threshold).unwrap();
                for count in [1usize, capacity.min(3), capacity] {
                    // Ragged tails: lengths straddling the compartment count.
                    for len in [1usize, compartments - 1, compartments, 2 * compartments + 3] {
                        let len = len.max(1).min(config.weights_per_filter_capacity());
                        let filters = sparse_filters(&mut rng, width, threshold, count, len);
                        for inputs in input_cases(&mut rng, len) {
                            let label = format!(
                                "C={compartments} {width} phi={threshold} f={count} len={len}"
                            );
                            assert_sparse_equivalent(&config, &filters, &inputs, &label);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn full_capacity_paper_tile_is_bit_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xCAFE);
    let config = ArchConfig::paper();
    let len = config.weights_per_filter_capacity(); // 1024: every row used
    let filters = sparse_filters(&mut rng, OperandWidth::Int8, 2, 8, len);
    for inputs in input_cases(&mut rng, len) {
        assert_sparse_equivalent(&config, &filters, &inputs, "paper full tile");
    }
}

#[test]
fn mixed_threshold_and_width_tiles_are_bit_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB17);
    let config = ArchConfig::paper();
    let len = 37usize;
    // Filters disagreeing on threshold share one tile: the column stride is
    // the maximum, the narrow filter's spare slots stay idle.
    let mut filters = sparse_filters(&mut rng, OperandWidth::Int8, 2, 2, len);
    filters.extend(sparse_filters(&mut rng, OperandWidth::Int8, 1, 2, len));
    for inputs in input_cases(&mut rng, len) {
        assert_sparse_equivalent(&config, &filters, &inputs, "mixed thresholds");
    }
    // Filters of different operand widths: the shift-plane count follows the
    // widest filter.
    let mut filters = sparse_filters(&mut rng, OperandWidth::Int4, 2, 2, len);
    filters.extend(sparse_filters(&mut rng, OperandWidth::Int16, 2, 2, len));
    for inputs in input_cases(&mut rng, len) {
        assert_sparse_equivalent(&config, &filters, &inputs, "mixed widths");
    }
}

#[test]
fn value_pruned_tiles_are_bit_identical_and_account_skips() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9A1);
    let config = ArchConfig::paper();
    let tables = QueryTables::new();
    let compartments = config.compartments_per_macro;
    // Filters whose trailing two thirds are magnitude-pruned to zero: the
    // tile's last two rows carry no stored bits, so the packed kernel elides
    // their reductions while every charged counter stays identical to the
    // scalar reference.
    let len = 3 * compartments;
    let filters: Vec<FilterMetadata> = (0..4)
        .map(|i| {
            let raw: Vec<i32> = (0..len)
                .map(|j| {
                    if j < compartments {
                        // Surviving weights are kept non-zero so the pruned
                        // cell count below is exact.
                        let v: i32 = rng.gen_range(-128..=127);
                        if v == 0 {
                            1
                        } else {
                            v
                        }
                    } else {
                        0
                    }
                })
                .collect();
            let approx = FilterApprox::approximate_with_threshold(&raw, 2, &tables)
                .expect("INT8 weights approximate at phi=2");
            FilterMetadata::from_filter(i, &approx)
        })
        .collect();
    for inputs in input_cases(&mut rng, len) {
        assert_sparse_equivalent(&config, &filters, &inputs, "value-pruned tile");
    }

    let mut pim = PimMacro::new(config).unwrap();
    pim.load_sparse_tile(&filters).unwrap();
    // 2 pruned rows x `compartments` weights x phi=2 slots per filter.
    assert_eq!(pim.loaded_pruned_cells() as usize, 4 * 2 * compartments * 2);
    assert_eq!(pim.loaded_zero_rows(), 4 * 2);
    pim.reset();
    assert_eq!(pim.loaded_pruned_cells(), 0);
    assert_eq!(pim.loaded_zero_rows(), 0);
}

#[test]
fn empty_tiles_are_bit_identical() {
    let config = ArchConfig::paper();
    // Zero filters, zero-length inputs, and zero filters with inputs.
    assert_sparse_equivalent(&config, &[], &[], "empty tile");
    assert_sparse_equivalent(&config, &[], &[3, -7, 0, 1], "no filters");
    let filters = sparse_filters(&mut ChaCha8Rng::seed_from_u64(1), OperandWidth::Int8, 2, 2, 0);
    assert_sparse_equivalent(&config, &filters, &[], "zero-length filters");
}

#[test]
fn dense_tiles_are_bit_identical_across_widths_and_geometries() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD0_5E);
    for config in geometries() {
        let compartments = config.compartments_per_macro;
        for width in OperandWidth::all() {
            let Ok(max_filters) = config.dense_filters_per_macro_for(width) else { continue };
            for count in [1usize, max_filters] {
                for len in [1usize, compartments, 2 * compartments + 3] {
                    let len = len.min(config.weights_per_filter_capacity());
                    let filters: Vec<Vec<i32>> = (0..count)
                        .map(|_| {
                            (0..len)
                                .map(|_| rng.gen_range(width.min_value()..=width.max_value()))
                                .collect()
                        })
                        .collect();
                    for inputs in input_cases(&mut rng, len) {
                        for ipu in [InputPreprocessor::new(), InputPreprocessor::without_sparsity()]
                        {
                            let mut planes = PimMacro::new(config).unwrap();
                            let mut scalar = ScalarPimMacro::new(config).unwrap();
                            let fast = planes
                                .execute_dense_tile_for_width(&filters, &inputs, &ipu, width)
                                .unwrap();
                            let slow = scalar
                                .execute_dense_tile_for_width(&filters, &inputs, &ipu, width)
                                .unwrap();
                            assert_eq!(
                                fast, slow,
                                "dense mismatch: C={compartments} {width} f={count} len={len}"
                            );
                            let fast_writes =
                                planes.load_dense_tile_for_width(&filters, width).unwrap();
                            let slow_writes =
                                scalar.load_dense_tile_for_width(&filters, width).unwrap();
                            assert_eq!(fast_writes, slow_writes);
                            assert_eq!(
                                planes.execute_loaded(&inputs, &ipu).unwrap(),
                                scalar.execute_loaded(&inputs, &ipu).unwrap(),
                                "dense split mismatch: C={compartments} {width}"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn dense_i8_path_matches_the_widened_path_and_the_scalar_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x18);
    let config = ArchConfig::paper();
    let len = 61usize;
    let filters_i8: Vec<Vec<i8>> = (0..2).map(|_| (0..len).map(|_| rng.gen()).collect()).collect();
    let widened: Vec<Vec<i32>> =
        filters_i8.iter().map(|f| f.iter().map(|&w| i32::from(w)).collect()).collect();
    let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
    for ipu in [InputPreprocessor::new(), InputPreprocessor::without_sparsity()] {
        let mut a = PimMacro::new(config).unwrap();
        let mut b = PimMacro::new(config).unwrap();
        let mut scalar = ScalarPimMacro::new(config).unwrap();
        let borrow = a.execute_dense_tile(&filters_i8, &inputs, &ipu).unwrap();
        let wide =
            b.execute_dense_tile_for_width(&widened, &inputs, &ipu, OperandWidth::Int8).unwrap();
        let reference = scalar.execute_dense_tile(&filters_i8, &inputs, &ipu).unwrap();
        assert_eq!(borrow, wide, "borrowing i8 path drifts from the widened path");
        assert_eq!(borrow, reference, "dense i8 drifts from the scalar reference");
    }
}

#[test]
fn error_paths_are_identical() {
    let config = ArchConfig::paper();
    let mut rng = ChaCha8Rng::seed_from_u64(0xE44);
    let meta = sparse_filters(&mut rng, OperandWidth::Int8, 2, 1, 16).remove(0);

    // Too many filters.
    let metas = vec![meta.clone(); 9];
    let mut planes = PimMacro::new(config).unwrap();
    let mut scalar = ScalarPimMacro::new(config).unwrap();
    let ipu = InputPreprocessor::new();
    assert_eq!(
        planes.execute_sparse_tile(&metas, &[1i8; 16], &ipu).unwrap_err(),
        scalar.execute_sparse_tile(&metas, &[1i8; 16], &ipu).unwrap_err(),
    );
    // Length mismatch.
    assert_eq!(
        planes.execute_sparse_tile(std::slice::from_ref(&meta), &[1i8; 3], &ipu).unwrap_err(),
        scalar.execute_sparse_tile(std::slice::from_ref(&meta), &[1i8; 3], &ipu).unwrap_err(),
    );
    // Inputs beyond capacity.
    let long = vec![1i8; config.weights_per_filter_capacity() + 1];
    assert_eq!(
        planes.execute_sparse_tile(std::slice::from_ref(&meta), &long, &ipu).unwrap_err(),
        scalar.execute_sparse_tile(std::slice::from_ref(&meta), &long, &ipu).unwrap_err(),
    );
    // Dense out-of-range weight.
    assert_eq!(
        planes
            .execute_dense_tile_for_width(&[vec![9]], &[1i8], &ipu, OperandWidth::Int4)
            .unwrap_err(),
        scalar
            .execute_dense_tile_for_width(&[vec![9]], &[1i8], &ipu, OperandWidth::Int4)
            .unwrap_err(),
    );
    // Execute before load.
    assert_eq!(
        PimMacro::new(config).unwrap().execute_loaded(&[1i8], &ipu).unwrap_err(),
        ScalarPimMacro::new(config).unwrap().execute_loaded(&[1i8], &ipu).unwrap_err(),
    );
    assert!(matches!(
        PimMacro::new(config).unwrap().execute_loaded(&[1i8], &ipu),
        Err(ArchError::NoTileLoaded)
    ));
    // Mismatched inputs against a loaded tile.
    planes.load_sparse_tile(std::slice::from_ref(&meta)).unwrap();
    scalar.load_sparse_tile(std::slice::from_ref(&meta)).unwrap();
    assert_eq!(
        planes.execute_loaded(&[1i8; 3], &ipu).unwrap_err(),
        scalar.execute_loaded(&[1i8; 3], &ipu).unwrap_err(),
    );
}
