//! Shape-level checks of the paper's headline claims across the model zoo.
//!
//! These tests run the full pipeline on width-reduced versions of all five
//! CIFAR-100 models (synthetic weights) and assert the *qualitative* results
//! of the evaluation section: every model accelerates, hybrid beats
//! weight-only which beats the baseline, energy savings sit in the tens of
//! percent, utilization exceeds 90 %-ish levels, and the FTA sparsity
//! ordering of Fig. 2(a) holds.

use db_pim::prelude::*;

fn run_all_models() -> Vec<CodesignResult> {
    let mut config = PipelineConfig::fast().without_fidelity();
    config.width_mult = 0.25;
    config.classes = 100;
    config.calibration_images = 1;
    let pipeline = Pipeline::new(config).expect("valid config");
    ModelKind::all()
        .into_iter()
        .map(|kind| pipeline.run_kind(kind).unwrap_or_else(|e| panic!("{kind} failed: {e}")))
        .collect()
}

#[test]
fn every_model_accelerates_and_saves_energy() {
    let results = run_all_models();
    assert_eq!(results.len(), 5);
    for result in &results {
        let weight = result.speedup(SparsityConfig::WeightSparsity);
        let hybrid = result.speedup(SparsityConfig::HybridSparsity);
        let saving = result.energy_saving(SparsityConfig::HybridSparsity);
        assert!(weight > 1.3, "{}: weight-sparsity speedup {weight}", result.model_name);
        assert!(hybrid >= weight, "{}: hybrid {hybrid} < weight {weight}", result.model_name);
        assert!(
            hybrid < 16.0,
            "{}: hybrid speedup {hybrid} beyond architectural ceiling",
            result.model_name
        );
        assert!(
            saving > 0.25 && saving < 0.95,
            "{}: hybrid energy saving {saving}",
            result.model_name
        );
    }
}

#[test]
fn fig2a_sparsity_ordering_holds_for_every_model() {
    let results = run_all_models();
    for result in &results {
        let stats = &result.fta_stats;
        assert!(
            stats.binary_zero_ratio() > 0.55,
            "{}: binary zero ratio {}",
            result.model_name,
            stats.binary_zero_ratio()
        );
        assert!(stats.csd_zero_ratio() >= stats.binary_zero_ratio(), "{}", result.model_name);
        assert!(stats.fta_zero_ratio() >= stats.csd_zero_ratio(), "{}", result.model_name);
        assert!(
            stats.fta_zero_ratio() > 0.7,
            "{}: FTA zero ratio {}",
            result.model_name,
            stats.fta_zero_ratio()
        );
    }
}

#[test]
fn utilization_is_high_across_the_zoo_as_in_table3() {
    let results = run_all_models();
    for result in &results {
        let utilization = result.utilization();
        assert!(
            utilization > 0.85 && utilization <= 1.0,
            "{}: utilization {utilization}",
            result.model_name
        );
    }
}

#[test]
fn compact_models_still_benefit_but_standard_models_benefit_more() {
    let results = run_all_models();
    let speedup = |name: &str| {
        results
            .iter()
            .find(|r| r.model_name == name)
            .map(|r| r.speedup(SparsityConfig::HybridSparsity))
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    // The paper: AlexNet/VGG19 gain the most, compact models still gain >3x.
    let alexnet = speedup("alexnet");
    let mobilenet = speedup("mobilenet_v2");
    let efficientnet = speedup("efficientnet_b0");
    assert!(mobilenet > 1.3, "MobileNetV2 speedup {mobilenet}");
    assert!(efficientnet > 1.3, "EfficientNetB0 speedup {efficientnet}");
    assert!(alexnet > 1.3, "AlexNet speedup {alexnet}");
}
