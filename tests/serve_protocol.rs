//! Wire-level behaviour of the daemon: malformed input of every shape gets
//! a structured `ErrorResponse` on the same connection (never a disconnect,
//! never a panic), pipeline failures are classified separately from parse
//! failures, and shutdown is acknowledged before the daemon exits.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use db_pim::prelude::{ArchConfig, ArchGrid, SparsityConfig};
use db_pim::{DseDriver, DseSpec, PipelineConfig, SweepSpec};
use dbpim_nn::ModelKind;
use dbpim_serve::protocol::{ErrorKind, Response, ShardAnnotation, ShardState};
use dbpim_serve::{Client, ClientError, RunQuery, ServeConfig, Server, ServerHandle};

fn server_pipeline() -> PipelineConfig {
    let mut pipeline = PipelineConfig::fast().without_fidelity();
    pipeline.width_mult = 0.25;
    pipeline.calibration_images = 1;
    pipeline
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        poll_interval: Duration::from_millis(50),
        pipeline: server_pipeline(),
        ..ServeConfig::default()
    }
}

fn spawn_server() -> ServerHandle {
    Server::spawn(serve_config()).expect("server spawns")
}

/// Sends one raw line and reads one response line.
fn raw_exchange(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> Response {
    writer.write_all(line.as_bytes()).expect("write");
    writer.write_all(b"\n").expect("write newline");
    writer.flush().expect("flush");
    let mut answer = String::new();
    reader.read_line(&mut answer).expect("read response line");
    serde_json::from_str(answer.trim_end()).expect("server speaks valid JSON")
}

/// The server closed this connection: either an orderly EOF or — when the
/// server dropped the socket with unread client bytes still in its receive
/// buffer, as after an oversized frame — a TCP reset.
fn assert_closed(reader: &mut BufReader<TcpStream>) {
    let mut rest = String::new();
    match reader.read_line(&mut rest) {
        Ok(0) => {}
        Ok(n) => panic!("expected a closed connection, read {n} more bytes: {rest:?}"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "expected EOF or reset, got {e}"
        ),
    }
}

fn assert_bad_request(response: &Response) {
    match response {
        Response::Error { error } => {
            assert_eq!(error.kind, ErrorKind::BadRequest, "wrong kind: {error}");
            assert!(!error.message.is_empty());
        }
        other => panic!("expected a structured BadRequest error, got {other:?}"),
    }
}

/// Garbage, truncated JSON, unknown variants and mistyped payloads each get
/// a structured error, and the connection keeps working afterwards.
#[test]
fn malformed_requests_get_structured_errors_not_disconnects() {
    let handle = spawn_server();
    let stream = TcpStream::connect(handle.addr()).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Not JSON at all.
    assert_bad_request(&raw_exchange(&mut reader, &mut writer, "this is not json"));
    // A JSON line truncated mid-object (the newline arrived, the braces
    // didn't) — the strict parser reports it instead of guessing.
    assert_bad_request(&raw_exchange(&mut reader, &mut writer, "{\"RunModel\":{\"mo"));
    // Well-formed JSON, unknown request variant.
    assert_bad_request(&raw_exchange(&mut reader, &mut writer, "\"Frobnicate\""));
    // Known variant, malformed payload (model name outside the zoo).
    assert_bad_request(&raw_exchange(
        &mut reader,
        &mut writer,
        "{\"RunModel\":{\"model\":\"LeNet5\",\"fidelity\":false}}",
    ));
    // Known variant, payload of the wrong JSON type.
    assert_bad_request(&raw_exchange(&mut reader, &mut writer, "{\"Sweep\":[1,2,3]}"));

    // The same connection still answers real requests.
    match raw_exchange(&mut reader, &mut writer, "\"Ping\"") {
        Response::Pong { version, .. } => assert_eq!(version, dbpim_serve::PROTOCOL_VERSION),
        other => panic!("connection should have survived the garbage, got {other:?}"),
    }

    // The daemon counted the failures.
    let mut client = Client::connect(handle.addr()).expect("connects");
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.errors, 5, "every malformed line is counted");
    assert!(stats.requests >= 6, "malformed lines still count as requests");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// A well-formed request that fails inside the pipeline is classified as a
/// pipeline error, not a bad request, and includes the cause.
#[test]
fn pipeline_failures_are_classified_and_survivable() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connects");

    // A degenerate geometry override: zero macros fails arch validation
    // inside the compiler.
    let mut broken_arch = db_pim::prelude::ArchConfig::paper();
    broken_arch.macros = 0;
    let query = RunQuery::new(ModelKind::AlexNet).with_arch(broken_arch);
    match client.run_model(&query) {
        Err(dbpim_serve::ClientError::Server(error)) => {
            assert_eq!(error.kind, ErrorKind::Pipeline, "wrong kind: {error}");
        }
        other => panic!("expected a structured pipeline error, got {other:?}"),
    }

    // The failure neither killed the connection nor poisoned the daemon.
    let entry = client.run_model(&RunQuery::new(ModelKind::AlexNet)).expect("healthy run");
    assert_eq!(entry.kind, ModelKind::AlexNet);

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// `Explore` requests with malformed grids get a `BadRequest`, and
/// well-formed requests whose grids are infeasible or oversized get a
/// structured pipeline error naming the problem — in every case the
/// connection survives and later requests are answered.
#[test]
fn explore_grid_failures_are_structured_errors_not_disconnects() {
    let handle = spawn_server();
    let stream = TcpStream::connect(handle.addr()).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Structurally malformed spec (missing fields): a parse-level error.
    assert_bad_request(&raw_exchange(
        &mut reader,
        &mut writer,
        "{\"Explore\":{\"spec\":{\"bogus\":true}}}",
    ));
    // Wrong payload type entirely.
    assert_bad_request(&raw_exchange(&mut reader, &mut writer, "{\"Explore\":[1,2]}"));

    // Well-formed spec, infeasible geometry (zero macros): a pipeline
    // error that names the offending grid point.
    let mut client = Client::connect(handle.addr()).expect("connects");
    let infeasible = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![4, 0]),
        vec![ModelKind::AlexNet],
    );
    match client.explore(&infeasible) {
        Err(ClientError::Server(error)) => {
            assert_eq!(error.kind, ErrorKind::Pipeline, "wrong kind: {error}");
            assert!(error.message.contains("infeasible"), "{error}");
        }
        other => panic!("expected a structured pipeline error, got {other:?}"),
    }

    // An undersized buffer axis is rejected the same way.
    let undersized = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_rows(vec![64]).with_weight_buffers(vec![16]),
        vec![ModelKind::AlexNet],
    );
    match client.explore(&undersized) {
        Err(ClientError::Server(error)) => {
            assert!(error.message.contains("weight buffer"), "{error}");
        }
        other => panic!("expected a structured pipeline error, got {other:?}"),
    }

    // An oversized cross product is refused before any point executes.
    let oversized = DseSpec::new(
        ArchGrid::around(ArchConfig::paper())
            .with_macros((1..=20).collect())
            .with_rows((1..=20).map(|i| i * 8).collect())
            .with_frequencies((1..=20).map(|i| f64::from(i) * 50.0).collect()),
        vec![ModelKind::AlexNet],
    );
    match client.explore(&oversized) {
        Err(ClientError::Server(error)) => {
            assert!(error.message.contains("maximum"), "{error}");
        }
        other => panic!("expected a structured pipeline error, got {other:?}"),
    }

    // Both connections survived all of it.
    match raw_exchange(&mut reader, &mut writer, "\"Ping\"") {
        Response::Pong { .. } => {}
        other => panic!("raw connection should have survived, got {other:?}"),
    }
    client.ping().expect("client connection survived");
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.errors, 5, "every failed explore is counted");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// Streamed `Explore` entries arrive in canonical order and reassemble
/// into the same `DseReport` a local driver produces for the same spec
/// (timestamps aside).
#[test]
fn explore_stream_merges_into_the_same_report_as_a_local_run() {
    let handle = spawn_server();
    let spec = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]),
        vec![ModelKind::AlexNet],
    )
    .with_sparsity(vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity]);

    let mut client = Client::connect(handle.addr()).expect("connects");
    let mut streamed_indices = Vec::new();
    let remote = client
        .explore_streaming(&spec, |index, entry| {
            streamed_indices.push((index, entry.arch.macros));
        })
        .expect("explore runs");
    assert_eq!(streamed_indices, vec![(0, 2), (1, 4)], "stream order is canonical");
    assert_eq!(remote.total_points, 2);
    assert!(remote.is_complete());

    // A local driver over the same pipeline configuration produces the
    // same report, bit-identical results at every point.
    let local =
        DseDriver::new(server_pipeline()).expect("valid config").run(&spec).expect("local run");
    assert!(remote.results_match(&local), "served exploration diverges from the local driver");

    // Streamed entries merge into a local (e.g. partially resumed) report
    // without duplicating points.
    let merged = local.clone().merge(remote.clone()).expect("same spec merges");
    assert_eq!(merged.entries.len(), 2);
    assert!(merged.results_match(&local));

    // The daemon served the whole grid from one artifact build.
    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.cache.artifact_misses, 1);
    assert_eq!(stats.cache.program_misses, 2, "one compilation per geometry");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// An already-expired deadline (0 ms) gets a structured `DeadlineExceeded`
/// error on every deadline-aware request — and the connection survives to
/// serve an identical request without a deadline immediately afterwards.
#[test]
fn expired_deadlines_are_structured_errors_not_hangs() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connects");

    let expect_deadline = |outcome: Result<&str, ClientError>| match outcome {
        Err(ClientError::Server(error)) => {
            assert_eq!(error.kind, ErrorKind::DeadlineExceeded, "wrong kind: {error}");
            assert!(error.to_string().contains("deadline"), "{error}");
        }
        Ok(what) => panic!("{what} ignored its expired deadline"),
        Err(other) => panic!("expected a structured deadline error, got {other:?}"),
    };

    let query = RunQuery::new(ModelKind::AlexNet).with_deadline_ms(0);
    expect_deadline(client.run_model(&query).map(|_| "RunModel"));

    let sweep = SweepSpec::new(vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::HybridSparsity]);
    expect_deadline(
        client.sweep_streaming_with(&sweep, false, Some(0), |_, _| {}).map(|_| "Sweep"),
    );

    let spec = DseSpec::new(ArchGrid::around(ArchConfig::paper()), vec![ModelKind::AlexNet]);
    expect_deadline(
        client.explore_streaming_with(&spec, Some(0), None, |_, _| {}).map(|_| "Explore"),
    );

    // A generous deadline changes nothing about the result.
    let entry = client
        .run_model(&RunQuery::new(ModelKind::AlexNet).with_deadline_ms(120_000))
        .expect("a generous deadline still answers");
    let direct = client.run_model(&RunQuery::new(ModelKind::AlexNet)).expect("no deadline");
    assert_eq!(entry, direct, "a deadline must never change the computed result");

    let stats = client.cache_stats().expect("stats");
    assert_eq!(stats.errors, 3, "every expired deadline is counted");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// Shard-tagged explorations surface in the `ShardStatus` registry with
/// accumulated completion counts; untagged requests never appear.
#[test]
fn shard_tagged_explorations_report_progress() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connects");
    assert!(client.shard_statuses().expect("empty registry").is_empty());

    let spec = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]),
        vec![ModelKind::AlexNet],
    )
    .with_sparsity(vec![SparsityConfig::HybridSparsity]);
    // An untagged exploration leaves no trace.
    client.explore(&spec).expect("untagged explore");
    assert!(client.shard_statuses().expect("still empty").is_empty());

    // Two tagged requests for the same shard accumulate; `points` is the
    // shard's full size, so completing 2 of 3 leaves it Running.
    let tag = ShardAnnotation { fleet: "progress-test".to_string(), shard: 1, of: 2, points: 3 };
    client
        .explore_streaming_with(&spec, None, Some(tag.clone()), |_, _| {})
        .expect("tagged explore");
    let statuses = client.shard_statuses().expect("registry");
    assert_eq!(statuses.len(), 1);
    assert_eq!(statuses[0].fleet, "progress-test");
    assert_eq!((statuses[0].shard, statuses[0].of), (1, 2));
    assert_eq!(statuses[0].completed_points, 2);
    assert_eq!(statuses[0].total_points, 3);
    assert_eq!(statuses[0].state, ShardState::Running);

    // One more tagged point finishes the shard.
    let single = DseSpec::new(ArchGrid::around(ArchConfig::paper()), vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::HybridSparsity]);
    client.explore_streaming_with(&single, None, Some(tag), |_, _| {}).expect("finishing point");
    let statuses = client.shard_statuses().expect("registry");
    assert_eq!(statuses[0].completed_points, 3);
    assert_eq!(statuses[0].state, ShardState::Finished);

    // A tagged request that fails marks the shard Failed.
    let infeasible = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![0]),
        vec![ModelKind::AlexNet],
    );
    let failing_tag =
        ShardAnnotation { fleet: "progress-test".to_string(), shard: 0, of: 2, points: 3 };
    client
        .explore_streaming_with(&infeasible, None, Some(failing_tag), |_, _| {})
        .expect_err("infeasible grid fails");
    let statuses = client.shard_statuses().expect("registry");
    assert_eq!(statuses.len(), 2, "two shards tracked");
    let failed = statuses.iter().find(|s| s.shard == 0).expect("failed shard tracked");
    assert_eq!(failed.state, ShardState::Failed);
    assert_eq!(failed.completed_points, 0);

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// Empty lines are ignored rather than answered, and a client that
/// disconnects abruptly does not take the daemon down.
#[test]
fn blank_lines_and_abrupt_disconnects_are_tolerated() {
    let handle = spawn_server();

    {
        let stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        // Blank lines produce no response; the next real request answers
        // immediately (nothing queued in between).
        writer.write_all(b"\n\r\n   \n").expect("write blanks");
        match raw_exchange(&mut reader, &mut writer, "\"Ping\"") {
            Response::Pong { .. } => {}
            other => panic!("expected Pong, got {other:?}"),
        }
        // Drop mid-connection without a goodbye.
        writer.write_all(b"{\"RunModel\":").expect("write a torn prefix");
    }

    // The daemon is still healthy for the next client.
    let mut client = Client::connect(handle.addr()).expect("connects");
    client.ping().expect("daemon survived the abrupt disconnect");
    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// A frame above `max_frame_bytes` — terminated or not — is answered with a
/// structured `FrameTooLarge` error and the connection closes; the daemon
/// never buffers past the limit and stays healthy for the next client.
#[test]
fn oversized_frames_get_a_structured_error_and_a_close() {
    let handle = Server::spawn(ServeConfig { max_frame_bytes: 1024, ..serve_config() })
        .expect("server spawns");

    // The payloads fit in one loopback segment and one server-side read,
    // so the server consumes every byte before closing — an orderly FIN
    // with the error response intact, not a racy RST that could destroy
    // the unread response in the client's receive buffer.
    let over_limit = |payload: &[u8], what: &str| {
        let stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writer.write_all(payload).expect("write oversized payload");
        writer.flush().expect("flush");
        let mut answer = String::new();
        reader.read_line(&mut answer).expect("read response line");
        match serde_json::from_str::<Response>(answer.trim_end()).expect("valid JSON") {
            Response::Error { error } => {
                assert_eq!(error.kind, ErrorKind::FrameTooLarge, "{what}: wrong kind: {error}");
                assert!(error.message.contains("1024"), "{what}: {error}");
            }
            other => panic!("{what}: expected FrameTooLarge, got {other:?}"),
        }
        assert_closed(&mut reader);
    };

    // A terminated giant line.
    over_limit(format!("{}\n", "x".repeat(3000)).as_bytes(), "terminated");
    // A never-terminated line must trip the limit too — this is the
    // unbounded-accumulation OOM vector.
    over_limit("y".repeat(3000).as_bytes(), "unterminated");

    // The daemon counted both rejections and still serves.
    let mut client = Client::connect(handle.addr()).expect("connects");
    client.ping().expect("daemon survived the oversized frames");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected_frames, 2, "both oversized frames counted");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// A byte-at-a-time (slowloris-style) client crosses many read timeouts
/// mid-frame; the partial bytes stay attached to *their* frame — the
/// request completes correctly and the next frame on the connection is
/// unaffected.
#[test]
fn slowloris_clients_complete_frames_across_read_timeouts() {
    let handle = spawn_server(); // poll_interval is 50 ms
    let stream = TcpStream::connect(handle.addr()).expect("connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Dribble a Ping one byte every ~2 poll intervals.
    for byte in "\"Ping\"\n".as_bytes() {
        writer.write_all(&[*byte]).expect("write byte");
        writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(110));
    }
    let mut answer = String::new();
    reader.read_line(&mut answer).expect("read response line");
    match serde_json::from_str::<Response>(answer.trim_end()).expect("valid JSON") {
        Response::Pong { version, .. } => assert_eq!(version, dbpim_serve::PROTOCOL_VERSION),
        other => panic!("expected Pong for the dribbled frame, got {other:?}"),
    }

    // No partial bytes leaked into the next request: a whole frame sent at
    // once answers immediately and correctly.
    match raw_exchange(&mut reader, &mut writer, "\"ListModels\"") {
        Response::Models { models } => assert_eq!(models.len(), 5),
        other => panic!("expected Models after the slow frame, got {other:?}"),
    }

    // Two frames in one write (plus a torn third) also frame correctly.
    writer.write_all(b"\"Ping\"\n\"Ping\"\n\"Li").expect("write packed frames");
    writer.flush().expect("flush");
    for _ in 0..2 {
        let mut answer = String::new();
        reader.read_line(&mut answer).expect("read response line");
        assert!(
            matches!(
                serde_json::from_str::<Response>(answer.trim_end()).expect("valid JSON"),
                Response::Pong { .. }
            ),
            "packed frames must each answer"
        );
    }
    // Complete the torn third frame after a timeout gap.
    std::thread::sleep(Duration::from_millis(120));
    match raw_exchange(&mut reader, &mut writer, "stModels\"") {
        Response::Models { models } => assert_eq!(models.len(), 5),
        other => panic!("expected Models from the torn frame, got {other:?}"),
    }

    let mut client = Client::connect(handle.addr()).expect("connects");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.errors, 0, "no slow frame was misparsed");
    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// On a daemon started with an auth token: unauthenticated requests (except
/// `Ping`) get a structured `Unauthorized` error but keep the connection;
/// a wrong token gets `Unauthorized` and a close; the right token unlocks
/// everything. An open daemon accepts any token.
#[test]
fn auth_rejections_are_structured_and_the_right_token_unlocks() {
    let handle =
        Server::spawn(ServeConfig { auth_token: Some("sesame".to_string()), ..serve_config() })
            .expect("server spawns");

    // Ping needs no credentials (liveness probing predates them).
    let mut client = Client::connect(handle.addr()).expect("connects");
    client.ping().expect("unauthenticated ping is allowed");

    // Anything else unauthenticated: structured Unauthorized, connection
    // survives.
    match client.list_models() {
        Err(ClientError::Server(error)) => {
            assert_eq!(error.kind, ErrorKind::Unauthorized, "wrong kind: {error}");
        }
        other => panic!("expected Unauthorized, got {other:?}"),
    }

    // The same connection can still authenticate and proceed.
    client.authenticate("sesame").expect("right token");
    let models = client.list_models().expect("authorized request");
    assert_eq!(models.len(), 5);

    // A wrong token: structured Unauthorized, then the daemon closes the
    // connection (no second guess on the same socket).
    let mut guesser = Client::connect(handle.addr()).expect("connects");
    match guesser.authenticate("open says me") {
        Err(ClientError::Server(error)) => {
            assert_eq!(error.kind, ErrorKind::Unauthorized, "wrong kind: {error}");
        }
        other => panic!("expected Unauthorized for the wrong token, got {other:?}"),
    }
    assert!(guesser.ping().is_err(), "wrong-token connection must be closed");

    // Rejections were counted.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected_unauthorized, 2, "gated request + wrong token");
    assert!(stats.errors >= 2);

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");

    // An open daemon accepts any credentials, so clients can authenticate
    // unconditionally.
    let open = spawn_server();
    let mut client = Client::connect(open.addr()).expect("connects");
    client.authenticate("anything").expect("open daemons accept any token");
    client.shutdown().expect("shutdown acknowledged");
    open.join().expect("daemon exits cleanly");
}

/// With every worker busy and no backlog allowance, a new connection is
/// rejected with a structured `Overloaded` answer instead of queueing
/// unboundedly — and once the load drains, new connections are admitted
/// again.
#[test]
fn saturated_daemons_reject_with_a_structured_overloaded_error() {
    let handle =
        Server::spawn(ServeConfig { threads: 1, max_pending_connections: 0, ..serve_config() })
            .expect("server spawns");

    // Pin the single worker: a connection stays assigned to its worker for
    // its whole lifetime, so one served round trip is enough.
    let mut pinned = Client::connect(handle.addr()).expect("connects");
    pinned.ping().expect("the pinned connection is being served");

    // The next connection must be turned away at the door.
    let stream = TcpStream::connect(handle.addr()).expect("tcp connects");
    let mut reader = BufReader::new(stream);
    let mut answer = String::new();
    reader.read_line(&mut answer).expect("read rejection line");
    match serde_json::from_str::<Response>(answer.trim_end()).expect("valid JSON") {
        Response::Error { error } => {
            assert_eq!(error.kind, ErrorKind::Overloaded, "wrong kind: {error}");
            assert!(!error.message.is_empty());
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("read"), 0, "rejected connection closes");

    // Release the worker; the daemon must admit new connections again.
    drop(pinned);
    let mut recovered = None;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(50));
        if let Ok(mut client) = Client::connect(handle.addr()) {
            if client.ping().is_ok() {
                recovered = Some(client);
                break;
            }
        }
    }
    let mut client = recovered.expect("daemon admits connections again after the load drains");
    let stats = client.stats().expect("stats");
    assert!(stats.rejected_overloaded >= 1, "the rejection was counted");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// The `Stats` surface against a scripted request sequence: request and
/// error totals, rejection counters, queue gauges and the per-request-type
/// latency histogram counts all match exactly what was sent.
#[test]
fn stats_counters_match_a_scripted_request_sequence() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connects");

    client.ping().expect("ping 1");
    client.ping().expect("ping 2");
    client.list_models().expect("models");
    client.run_model(&RunQuery::new(ModelKind::AlexNet)).expect("run");

    // One malformed line on a second connection.
    {
        let stream = TcpStream::connect(handle.addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        assert_bad_request(&raw_exchange(&mut reader, &mut writer, "not json"));
    }

    let stats = client.stats().expect("stats");
    // 2 Ping + 1 ListModels + 1 RunModel + 1 garbage + this Stats = 6.
    assert_eq!(stats.requests, 6, "every frame is a counted request");
    assert_eq!(stats.errors, 1, "exactly the garbage line failed");
    assert_eq!(stats.connections, 2);
    // This client is being served right now; the raw connection may not
    // have been reaped yet, so allow either gauge reading.
    assert!(
        (1..=2).contains(&stats.active_connections),
        "unexpected active gauge: {}",
        stats.active_connections
    );
    assert_eq!(stats.queued_connections, 0);
    assert_eq!(stats.rejected_overloaded, 0);
    assert_eq!(stats.rejected_unauthorized, 0);
    assert_eq!(stats.rejected_frames, 0);

    let count_of = |request: &str| {
        stats
            .latency
            .iter()
            .find(|entry| entry.request == request)
            .map_or(0, |entry| entry.histogram.count)
    };
    assert_eq!(count_of("Ping"), 2);
    assert_eq!(count_of("ListModels"), 1);
    assert_eq!(count_of("RunModel"), 1);
    // A Stats answer is serialized before its own latency sample lands, so
    // the in-flight snapshot cannot include itself yet.
    assert_eq!(count_of("Stats"), 0);
    assert_eq!(count_of("Sweep"), 0, "unserved request types report no histogram");
    let run_latency =
        stats.latency.iter().find(|entry| entry.request == "RunModel").expect("recorded");
    assert!(run_latency.histogram.max_micros > 0, "a real run takes measurable time");
    assert!(run_latency.histogram.percentile_micros(0.99) >= run_latency.histogram.max_micros / 2);

    // A second snapshot counts the first one.
    let again = client.stats().expect("stats again");
    assert_eq!(again.requests, 7);
    let stats_count = again
        .latency
        .iter()
        .find(|entry| entry.request == "Stats")
        .map_or(0, |entry| entry.histogram.count);
    assert_eq!(stats_count, 1, "the previous Stats request is now on the books");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}
