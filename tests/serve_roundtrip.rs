//! The serving layer's headline contract: a daemon-served answer is
//! bit-identical to the same query run directly through `Pipeline` /
//! `BatchRunner`, repeated requests are served from the warm artifact cache
//! (asserted via the session cache-hit counters, not timing), and N
//! concurrent clients asking for the same (model, width) trigger exactly
//! one artifact build.

use std::time::Duration;

use db_pim::prelude::*;
use dbpim_serve::{Client, RunQuery, ServeConfig, Server};

fn small_config() -> PipelineConfig {
    let mut config = PipelineConfig::fast();
    config.width_mult = 0.25;
    config.calibration_images = 1;
    config.evaluation_images = 2;
    config
}

fn serve_config(pipeline: PipelineConfig, threads: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        poll_interval: Duration::from_millis(50),
        pipeline,
        ..ServeConfig::default()
    }
}

fn spawn_server(pipeline: PipelineConfig, threads: usize) -> dbpim_serve::ServerHandle {
    Server::spawn(serve_config(pipeline, threads)).expect("server spawns")
}

/// A served `RunModel` (all four sparsity configurations, fidelity on) is
/// bit-identical to `Pipeline::run_model` on the same configuration.
#[test]
fn served_run_model_matches_direct_pipeline() {
    let config = small_config();
    let handle = spawn_server(config, 2);
    let mut client = Client::connect(handle.addr()).expect("connects");
    assert_eq!(client.ping().expect("pings"), dbpim_serve::PROTOCOL_VERSION);

    let entry = client
        .run_model(&RunQuery::new(ModelKind::AlexNet).with_fidelity())
        .expect("served run succeeds");
    assert_eq!(entry.kind, ModelKind::AlexNet);
    assert_eq!(entry.width, config.operand_width);
    assert_eq!(entry.arch, config.arch);

    let direct = Pipeline::new(config)
        .expect("valid config")
        .run_kind(ModelKind::AlexNet)
        .expect("direct run succeeds");
    assert_eq!(entry.result, direct, "served result diverges from the direct pipeline");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// Authentication is transparent to the numbers: the same `RunModel` served
/// by an auth-required daemon (after the handshake) and by an open daemon is
/// bit-identical to the direct pipeline run.
#[test]
fn served_results_are_bit_identical_with_auth_on_and_off() {
    let config = small_config().without_fidelity();
    let direct = Pipeline::new(config)
        .expect("valid config")
        .run_kind(ModelKind::MobileNetV2)
        .expect("direct run succeeds");

    let open_handle = spawn_server(config, 2);
    let mut open_client = Client::connect(open_handle.addr()).expect("connects");
    let served_open =
        open_client.run_model(&RunQuery::new(ModelKind::MobileNetV2)).expect("open run succeeds");

    let locked_handle = Server::spawn(ServeConfig {
        auth_token: Some("roundtrip-secret".to_string()),
        ..serve_config(config, 2)
    })
    .expect("server spawns");
    let mut locked_client = Client::connect(locked_handle.addr()).expect("connects");
    locked_client.authenticate("roundtrip-secret").expect("handshake succeeds");
    let served_locked = locked_client
        .run_model(&RunQuery::new(ModelKind::MobileNetV2))
        .expect("authed run succeeds");

    assert_eq!(served_open.result, direct, "open daemon diverges from the direct pipeline");
    assert_eq!(served_locked, served_open, "auth handshake changed the served bits");

    open_client.shutdown().expect("shutdown acknowledged");
    open_handle.join().expect("daemon exits cleanly");
    locked_client.shutdown().expect("shutdown acknowledged");
    locked_handle.join().expect("daemon exits cleanly");
}

/// A served sweep streams its entries in deterministic order and reassembles
/// into exactly the report `BatchRunner` produces locally (modulo wall time,
/// which is measured, not computed).
#[test]
fn served_sweep_matches_direct_batch_runner() {
    let config = small_config().without_fidelity();
    let spec = SweepSpec::new(vec![ModelKind::AlexNet, ModelKind::MobileNetV2])
        .with_widths(vec![OperandWidth::Int4, OperandWidth::Int8]);

    let handle = spawn_server(config, 2);
    let mut client = Client::connect(handle.addr()).expect("connects");
    let mut streamed = Vec::new();
    let served = client
        .sweep_streaming(&spec, false, |index, entry| streamed.push((index, entry.kind)))
        .expect("served sweep succeeds");

    let runner = BatchRunner::new(config).expect("valid config");
    let direct = runner.run(&spec).expect("direct sweep succeeds");

    assert_eq!(served.entries, direct.entries, "served sweep diverges from BatchRunner");
    assert_eq!(served.prepared_models, direct.prepared_models);
    assert_eq!(served.simulated_runs, direct.simulated_runs);

    // The stream arrived incrementally and in entry order.
    assert_eq!(streamed.len(), served.entries.len());
    for (position, (index, kind)) in streamed.iter().enumerate() {
        assert_eq!(*index, position);
        assert_eq!(*kind, served.entries[position].kind);
    }

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// Pruning-carrying specs cross the wire intact: a served joint
/// (pruning × width) sweep and a pruning-grid `Explore` are bit-identical
/// to their direct `BatchRunner` / `DseDriver` counterparts.
#[test]
fn served_joint_sparsity_queries_match_direct_drivers() {
    let config = small_config().without_fidelity();
    let prunings = vec![PruningSpec::none(), PruningSpec::unstructured(0.5)];

    let handle = spawn_server(config, 2);
    let mut client = Client::connect(handle.addr()).expect("connects");

    let sweep_spec = SweepSpec::new(vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::HybridSparsity])
        .with_widths(vec![OperandWidth::Int4, OperandWidth::Int8])
        .with_pruning(prunings.clone());
    let served = client.sweep(&sweep_spec, false).expect("served sweep succeeds");
    let direct = BatchRunner::new(config)
        .expect("valid config")
        .run(&sweep_spec)
        .expect("direct sweep succeeds");
    assert_eq!(served.entries, direct.entries, "served joint sweep diverges from BatchRunner");
    assert_eq!(served.entries.len(), 4, "2 widths x 2 prunings");
    assert!(served.entries.iter().any(|e| e.pruning.is_active()), "pruning lost over the wire");

    let explore_spec = DseSpec::new(
        ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]).with_rows(vec![64]),
        vec![ModelKind::AlexNet],
    )
    .with_sparsity(vec![SparsityConfig::HybridSparsity])
    .with_pruning(prunings);
    let served = client.explore(&explore_spec).expect("served explore succeeds");
    let direct = DseDriver::new(config)
        .expect("valid config")
        .run(&explore_spec)
        .expect("direct explore succeeds");
    assert_eq!(served.total_points, 4, "2 geometries x 2 prunings");
    assert!(
        served.results_match(&direct),
        "served joint exploration diverges from the local DseDriver"
    );

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// Repeating a request hits the warm cache: the artifact-build counter does
/// not move, the hit counter does, and no recompilation happens.
#[test]
fn repeated_requests_are_served_from_warm_cache() {
    let config = small_config().without_fidelity();
    let handle = spawn_server(config, 2);
    let mut client = Client::connect(handle.addr()).expect("connects");

    let query = RunQuery::new(ModelKind::AlexNet);
    let cold = client.run_model(&query).expect("cold run succeeds");
    let after_cold = client.cache_stats().expect("stats").cache;
    assert_eq!(after_cold.artifact_misses, 1, "first request builds once");
    assert_eq!(after_cold.program_misses, 1, "first request compiles once");
    assert_eq!(after_cold.resident_artifacts, 1);

    let warm = client.run_model(&query).expect("warm run succeeds");
    assert_eq!(warm, cold, "warm result diverges from the cold one");
    let after_warm = client.cache_stats().expect("stats").cache;
    assert_eq!(after_warm.artifact_misses, 1, "no re-preparation on a repeat");
    assert_eq!(after_warm.program_misses, 1, "no recompilation on a repeat");
    assert!(after_warm.artifact_hits > after_cold.artifact_hits, "repeat was a cache hit");
    assert!(after_warm.program_hits > after_cold.program_hits);

    // A second client shares the same warm cache.
    let mut other = Client::connect(handle.addr()).expect("second client connects");
    other.run_model(&query).expect("other client's run succeeds");
    let after_other = other.cache_stats().expect("stats").cache;
    assert_eq!(after_other.artifact_misses, 1, "second client reuses the same artifacts");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// N concurrent clients requesting the same (model, width) cause exactly one
/// artifact preparation — the session layer's single-flight guarantee,
/// observed through the daemon's counters.
#[test]
fn concurrent_clients_share_one_artifact_build() {
    const CLIENTS: usize = 4;
    let config = small_config().without_fidelity();
    let handle = spawn_server(config, CLIENTS);
    let addr = handle.addr();

    let results: Vec<SweepEntry> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    client
                        .run_model(&RunQuery::new(ModelKind::MobileNetV2))
                        .expect("concurrent run succeeds")
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    });

    // Every client got the same bits.
    for entry in &results[1..] {
        assert_eq!(entry, &results[0], "concurrent clients disagree");
    }

    let mut client = Client::connect(addr).expect("connects");
    let stats = client.cache_stats().expect("stats");
    assert_eq!(
        stats.cache.artifact_misses, 1,
        "{CLIENTS} concurrent requests must build artifacts exactly once"
    );
    assert_eq!(stats.cache.program_misses, 1, "and compile exactly once");
    assert_eq!(stats.cache.artifact_hits as usize, CLIENTS - 1);

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}
