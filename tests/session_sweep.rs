//! Workspace integration tests for the simulation-session layer: batched
//! sweeps must be bit-identical to independent `Pipeline` runs, artifact
//! caching must actually share work, and degenerate sweeps must behave.

use std::sync::Arc;

use db_pim::prelude::*;

fn small_config() -> PipelineConfig {
    let mut config = PipelineConfig::fast();
    config.width_mult = 0.25;
    config.calibration_images = 1;
    config.evaluation_images = 2;
    config
}

/// Artifact reuse across the four sparsity configurations produces
/// bit-identical `CodesignResult`s (including every `RunReport`) to
/// independent `Pipeline` runs.
#[test]
fn batch_runner_matches_independent_pipeline_runs() {
    let config = small_config();
    let runner = BatchRunner::new(config).expect("valid config");
    let kinds = vec![ModelKind::AlexNet, ModelKind::MobileNetV2];
    let report =
        runner.run_with_fidelity(&SweepSpec::new(kinds.clone()), true).expect("sweep runs");
    assert_eq!(report.entries.len(), 2);
    assert_eq!(report.prepared_models, 2);
    assert_eq!(report.simulated_runs, 8);

    let pipeline = Pipeline::new(config).expect("valid config");
    for kind in kinds {
        let independent = pipeline.run_kind(kind).expect("pipeline runs");
        let swept = report.result(kind).expect("model swept");
        assert_eq!(swept, &independent, "{kind:?} sweep result diverges from Pipeline");
    }
}

/// The LRU cap actually evicts: a capacity-1 session holds one prepared
/// model at a time, counts each eviction, rebuilds an evicted model on
/// re-request — and none of it changes the computed results.
#[test]
fn capped_sessions_evict_least_recently_used_artifacts() {
    let config = small_config();
    let session = SimSession::new(config).expect("valid config");
    session.set_cache_capacity(Some(1));

    let alexnet_cold = session.artifacts(ModelKind::AlexNet).expect("prepares A");
    let stats = session.cache_stats();
    assert_eq!((stats.resident_artifacts, stats.artifact_evictions), (1, 0));

    // Preparing a second model evicts the first (cap 1).
    session.artifacts(ModelKind::MobileNetV2).expect("prepares B");
    let stats = session.cache_stats();
    assert_eq!(stats.resident_artifacts, 1, "cap was not enforced: {stats:?}");
    assert_eq!(stats.artifact_evictions, 1, "{stats:?}");

    // The evicted model is a miss again — rebuilt, not resurrected — and
    // the rebuild evicts the other model in turn.
    let alexnet_again = session.artifacts(ModelKind::AlexNet).expect("rebuilds A");
    assert!(!Arc::ptr_eq(&alexnet_cold, &alexnet_again), "evicted artifacts were resurrected");
    let stats = session.cache_stats();
    assert_eq!(stats.artifact_misses, 3, "A, B, then A again: {stats:?}");
    assert_eq!(stats.artifact_evictions, 2, "{stats:?}");
    assert_eq!(stats.resident_artifacts, 1);

    // Eviction must never change results: the rebuilt artifacts simulate
    // bit-identically to an uncapped session's.
    let uncapped = SimSession::new(config).expect("valid config");
    let reference = uncapped.artifacts(ModelKind::AlexNet).expect("prepares");
    let run_a = alexnet_again
        .simulate(config.arch, SparsityConfig::HybridSparsity)
        .expect("capped simulates");
    let run_b = reference.simulate(config.arch, SparsityConfig::HybridSparsity).expect("uncapped");
    assert_eq!(run_a, run_b, "eviction changed simulation results");

    // LRU order: with cap 2, touching A makes B the eviction victim.
    let session = SimSession::new(config).expect("valid config");
    session.set_cache_capacity(Some(2));
    session.artifacts(ModelKind::AlexNet).expect("A");
    session.artifacts(ModelKind::MobileNetV2).expect("B");
    session.artifacts(ModelKind::AlexNet).expect("touch A");
    session.artifacts(ModelKind::ResNet18).expect("C evicts B");
    let stats = session.cache_stats();
    assert_eq!(stats.artifact_evictions, 1);
    // A survived (hit), B is gone (miss on re-request).
    let before = session.cache_stats().artifact_misses;
    session.artifacts(ModelKind::AlexNet).expect("A still cached");
    assert_eq!(session.cache_stats().artifact_misses, before, "A was wrongly evicted");
    session.artifacts(ModelKind::MobileNetV2).expect("B rebuilt");
    assert_eq!(session.cache_stats().artifact_misses, before + 1, "B should have been evicted");
}

/// A capped `BatchRunner` propagates the cap to its per-width sessions and
/// aggregates their eviction counters.
#[test]
fn batch_runner_cache_cap_reaches_width_sessions() {
    let runner = BatchRunner::new(small_config()).expect("valid config").with_cache_cap(Some(1));
    let spec = SweepSpec::new(vec![ModelKind::AlexNet, ModelKind::MobileNetV2])
        .with_sparsity(vec![SparsityConfig::HybridSparsity])
        .with_widths(vec![OperandWidth::Int4]);
    let report = runner.run(&spec).expect("sweep runs");
    assert_eq!(report.entries.len(), 2);
    let stats = runner.cache_stats();
    assert!(stats.artifact_evictions >= 1, "the INT4 width session ignored the cap: {stats:?}");
    assert!(stats.resident_artifacts <= 2, "one per session at most: {stats:?}");
}

/// An empty sweep returns an empty report.
#[test]
fn empty_sweep_returns_empty_report() {
    let runner = BatchRunner::new(small_config()).expect("valid config");
    let report = runner.run(&SweepSpec::new(Vec::new())).expect("empty sweep runs");
    assert!(report.is_empty());
    assert_eq!(report.prepared_models, 0);
    assert_eq!(report.simulated_runs, 0);
    assert!(report.results().next().is_none());
}

/// The session hands out the *same* artifacts (pointer-equal) on repeated
/// requests, and the runner reuses them across sparsity configurations.
#[test]
fn session_caches_artifacts_per_model() {
    let session = SimSession::new(small_config()).expect("valid config");
    let first = session.artifacts(ModelKind::AlexNet).expect("prepares");
    let second = session.artifacts(ModelKind::AlexNet).expect("cached");
    assert!(Arc::ptr_eq(&first, &second), "artifacts were re-prepared");

    // Compiled programs are cached per geometry too.
    let arch = session.config().arch;
    let p1 = first.programs(arch).expect("compiles");
    let p2 = first.programs(arch).expect("cached");
    assert!(Arc::ptr_eq(&p1, &p2), "programs were re-compiled");
}

/// Parallel and sequential execution of the same sweep agree exactly.
#[test]
fn parallelism_does_not_change_results() {
    let spec = SweepSpec::new(vec![ModelKind::AlexNet]);
    let sequential = BatchRunner::new(small_config())
        .expect("valid config")
        .with_threads(1)
        .run(&spec)
        .expect("sequential sweep");
    let parallel = BatchRunner::new(small_config())
        .expect("valid config")
        .with_threads(8)
        .run(&spec)
        .expect("parallel sweep");
    assert_eq!(sequential.entries, parallel.entries);
}

/// A sparsity subset sweeps only the requested configurations, in canonical
/// Fig. 7 order.
#[test]
fn sparsity_subset_is_honoured() {
    let runner = BatchRunner::new(small_config()).expect("valid config");
    let spec = SweepSpec::new(vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::HybridSparsity, SparsityConfig::DenseBaseline]);
    let report = runner.run(&spec).expect("subset sweep");
    let result = report.result(ModelKind::AlexNet).expect("model swept");
    assert_eq!(result.runs.len(), 2);
    assert_eq!(result.runs[0].sparsity, SparsityConfig::DenseBaseline);
    assert_eq!(result.runs[1].sparsity, SparsityConfig::HybridSparsity);
    assert!(result.speedup(SparsityConfig::HybridSparsity) > 1.0);
}

/// Two distinct models sharing a name must not receive each other's cached
/// artifacts.
#[test]
fn same_name_different_model_is_not_served_from_cache() {
    let config = small_config();
    let session = SimSession::new(config).expect("valid config");
    // Both builders produce a model named "tiny_cnn", with different weights.
    let a = zoo::tiny_cnn(10, 3).expect("model builds");
    let b = zoo::tiny_cnn(10, 7).expect("model builds");
    let result_a = session.codesign_model(&a, true).expect("a runs");
    let result_b = session.codesign_model(&b, true).expect("b runs");
    assert_ne!(result_a.fta_stats, result_b.fta_stats, "b was served a's cached artifacts");

    let expected_b =
        Pipeline::new(config).expect("valid config").run_model(&b).expect("pipeline runs");
    assert_eq!(result_b, expected_b);
}

/// `SimSession::codesign` on a non-zoo model matches `Pipeline::run_model`.
#[test]
fn session_codesign_model_matches_pipeline() {
    let config = small_config();
    let session = SimSession::new(config).expect("valid config");
    let model = zoo::tiny_cnn(10, 3).expect("model builds");
    let via_session = session.codesign_model(&model, true).expect("session runs");
    let via_pipeline =
        Pipeline::new(config).expect("valid config").run_model(&model).expect("pipeline runs");
    assert_eq!(via_session, via_pipeline);
}

/// The runner keeps one artifact cache per operand width: repeated sweeps
/// at the same widths reuse both the per-width sessions and the prepared
/// artifacts (no re-preparation), and the base width is served by the base
/// session itself.
#[test]
fn width_sweeps_reuse_cached_artifacts_across_runs() {
    let runner = BatchRunner::new(small_config()).expect("valid config");
    let spec = SweepSpec::new(vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::DenseBaseline])
        .with_widths(vec![OperandWidth::Int4, OperandWidth::Int8]);

    let first = runner.run(&spec).expect("first sweep runs");
    assert_eq!(first.entries.len(), 2);
    assert_eq!(first.prepared_models, 2);

    // The base session serves its own configured width (INT8)...
    let int8_session = runner.session_for_width(OperandWidth::Int8).expect("int8 session");
    assert!(std::ptr::eq(&*int8_session, runner.session()), "INT8 must reuse the base session");
    // ...and sibling widths keep a stable session across calls.
    let int4_a = runner.session_for_width(OperandWidth::Int4).expect("int4 session");
    let int4_b = runner.session_for_width(OperandWidth::Int4).expect("int4 session again");
    assert!(Arc::ptr_eq(&int4_a, &int4_b), "per-width sessions were re-created");
    assert_eq!(int4_a.config().operand_width, OperandWidth::Int4);

    // Artifacts prepared by the sweep are pointer-identical on re-request,
    // and a second identical sweep reproduces the first bit-for-bit.
    let cached_a = int4_a.artifacts(ModelKind::AlexNet).expect("cached artifacts");
    let cached_b = int4_a.artifacts(ModelKind::AlexNet).expect("cached artifacts again");
    assert!(Arc::ptr_eq(&cached_a, &cached_b), "artifacts were re-prepared");
    let second = runner.run(&spec).expect("second sweep runs");
    assert_eq!(first.entries, second.entries);
}

/// A `SweepReport` round-trips through the vendored serde_json and merges
/// shard-style: entries concatenate, counters add up, wall time is the
/// shard maximum.
#[test]
fn sweep_report_merges_and_round_trips_through_serde_json() {
    let runner = BatchRunner::new(small_config()).expect("valid config");
    let sparsity = vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity];
    // Two shards of a models × widths sweep, split by model.
    let shard_a = runner
        .run(
            &SweepSpec::new(vec![ModelKind::AlexNet])
                .with_sparsity(sparsity.clone())
                .with_widths(vec![OperandWidth::Int8, OperandWidth::Int16]),
        )
        .expect("shard a runs");
    let shard_b = runner
        .run(
            &SweepSpec::new(vec![ModelKind::MobileNetV2])
                .with_sparsity(sparsity)
                .with_widths(vec![OperandWidth::Int8, OperandWidth::Int16]),
        )
        .expect("shard b runs");

    // Serialization round-trip is lossless for every field.
    for shard in [&shard_a, &shard_b] {
        let json = serde_json::to_string(shard).expect("serializes");
        let back: SweepReport = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(shard, &back, "sweep report did not survive the JSON round trip");
    }

    // Merge combines the shards without touching their entries.
    let expected_wall = shard_a.wall_time.max(shard_b.wall_time);
    let merged = shard_a.clone().merge(shard_b.clone());
    assert_eq!(merged.entries.len(), shard_a.entries.len() + shard_b.entries.len());
    assert_eq!(merged.prepared_models, shard_a.prepared_models + shard_b.prepared_models);
    assert_eq!(merged.simulated_runs, shard_a.simulated_runs + shard_b.simulated_runs);
    assert_eq!(merged.wall_time, expected_wall);
    assert_eq!(
        merged.result_at_width(ModelKind::AlexNet, OperandWidth::Int16),
        shard_a.result_at_width(ModelKind::AlexNet, OperandWidth::Int16)
    );
    assert_eq!(
        merged.result_at_width(ModelKind::MobileNetV2, OperandWidth::Int8),
        shard_b.result_at_width(ModelKind::MobileNetV2, OperandWidth::Int8)
    );
    // The merged report still round-trips.
    let json = serde_json::to_string(&merged).expect("serializes");
    let back: SweepReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(merged, back);
}

/// The disk half of sharded sweeps: two shards `save` their partial
/// reports, a combiner `load`s and `merge`s them, and the result is
/// bit-identical to merging in memory.
#[test]
fn sweep_report_shards_round_trip_through_disk_snapshots() {
    let runner = BatchRunner::new(small_config()).expect("valid config");
    let sparsity = vec![SparsityConfig::DenseBaseline, SparsityConfig::WeightSparsity];
    let shard_a = runner
        .run(&SweepSpec::new(vec![ModelKind::AlexNet]).with_sparsity(sparsity.clone()))
        .expect("shard a runs");
    let shard_b = runner
        .run(&SweepSpec::new(vec![ModelKind::MobileNetV2]).with_sparsity(sparsity))
        .expect("shard b runs");

    let dir =
        std::env::temp_dir().join(format!("dbpim-shard-test-{}-{}", std::process::id(), line!()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path_a = dir.join("shard_a.json");
    let path_b = dir.join("shard_b.json");
    shard_a.save(&path_a).expect("shard a saves");
    shard_b.save(&path_b).expect("shard b saves");

    let loaded_a = SweepReport::load(&path_a).expect("shard a loads");
    let loaded_b = SweepReport::load(&path_b).expect("shard b loads");
    assert_eq!(loaded_a, shard_a, "shard a did not survive the disk round trip");
    assert_eq!(loaded_b, shard_b, "shard b did not survive the disk round trip");

    let merged_from_disk = loaded_a.merge(loaded_b);
    let merged_in_memory = shard_a.merge(shard_b);
    assert_eq!(merged_from_disk, merged_in_memory);

    // Failure shapes are structured errors, not panics.
    assert!(SweepReport::load(dir.join("missing.json")).is_err());
    let torn = dir.join("torn.json");
    std::fs::write(&torn, "{\"entries\":[").expect("write torn file");
    let err = SweepReport::load(&torn).unwrap_err();
    assert!(err.to_string().contains("torn.json"), "error names the file: {err}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Overlapping shards: a point present in both shards appears once in the
/// merged report, counters do not double-count, and merging is idempotent
/// and deterministic.
#[test]
fn overlapping_shards_dedupe_deterministically_on_merge() {
    let runner = BatchRunner::new(small_config()).expect("valid config");
    let sparsity = vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity];
    let shard_ab = runner
        .run(
            &SweepSpec::new(vec![ModelKind::AlexNet, ModelKind::MobileNetV2])
                .with_sparsity(sparsity.clone()),
        )
        .expect("shard ab runs");
    let shard_b = runner
        .run(&SweepSpec::new(vec![ModelKind::MobileNetV2]).with_sparsity(sparsity.clone()))
        .expect("shard b runs");
    assert_eq!(shard_ab.entries.len(), 2);
    assert_eq!(shard_b.entries.len(), 1);

    // The overlapping MobileNetV2 entry is identical in both shards (same
    // cached artifacts), so the merge drops the duplicate.
    let merged = shard_ab.clone().merge(shard_b.clone());
    assert_eq!(merged.entries, shard_ab.entries, "duplicate point was not deduped");
    assert_eq!(merged.prepared_models, 2, "prepared count double-counted the overlap");
    assert_eq!(merged.simulated_runs, 4, "simulated count double-counted the overlap");

    // Merge order only affects entry order, never the content: b-then-ab
    // keeps b's copy first, then adopts ab's non-duplicates.
    let merged_rev = shard_b.clone().merge(shard_ab.clone());
    assert_eq!(merged_rev.entries.len(), 2);
    assert_eq!(merged_rev.entries[0], shard_b.entries[0]);
    assert_eq!(merged_rev.prepared_models, merged.prepared_models);
    assert_eq!(merged_rev.simulated_runs, merged.simulated_runs);

    // Self-merge is the identity (up to the recomputed counters, which for
    // a driver-produced report already equal the content-derived values).
    let self_merged = shard_ab.clone().merge(shard_ab.clone());
    assert_eq!(self_merged, shard_ab);

    // A merged report still snapshots and reloads losslessly.
    let path = std::env::temp_dir().join(format!(
        "dbpim-overlap-test-{}-{}.json",
        std::process::id(),
        line!()
    ));
    merged.save(&path).expect("merged report saves");
    assert_eq!(SweepReport::load(&path).expect("merged report loads"), merged);
    std::fs::remove_file(&path).ok();
}

/// Entries that share a (model, width, geometry) key but carry different
/// content — shards split by sparsity configuration — are both kept:
/// dedup only ever removes exact duplicates.
#[test]
fn sparsity_split_shards_are_not_collapsed_by_merge() {
    let runner = BatchRunner::new(small_config()).expect("valid config");
    let dense = runner
        .run(
            &SweepSpec::new(vec![ModelKind::AlexNet])
                .with_sparsity(vec![SparsityConfig::DenseBaseline]),
        )
        .expect("dense shard runs");
    let hybrid = runner
        .run(
            &SweepSpec::new(vec![ModelKind::AlexNet])
                .with_sparsity(vec![SparsityConfig::HybridSparsity]),
        )
        .expect("hybrid shard runs");

    let merged = dense.clone().merge(hybrid.clone());
    assert_eq!(merged.entries.len(), 2, "distinct results for one key must both survive");
    assert_eq!(merged.prepared_models, 1, "one (model, width) pair across both entries");
    assert_eq!(merged.simulated_runs, 2);
    assert_eq!(merged.entries[0], dense.entries[0], "self's entry comes first");
    assert_eq!(merged.entries[1], hybrid.entries[0]);

    // Merging an empty report in either direction changes nothing.
    let empty = runner.run(&SweepSpec::new(Vec::new())).expect("empty sweep");
    assert_eq!(empty.clone().merge(merged.clone()).entries, merged.entries);
    assert_eq!(merged.clone().merge(empty).entries, merged.entries);
}

/// The session cache counters observe exactly what happened: one miss per
/// distinct model, hits on re-request, and program compilations counted
/// separately per geometry.
#[test]
fn session_cache_stats_count_builds_and_hits() {
    let session = SimSession::new(small_config()).expect("valid config");
    assert_eq!(session.cache_stats(), SessionCacheStats::default());

    session.artifacts(ModelKind::AlexNet).expect("prepares");
    let stats = session.cache_stats();
    assert_eq!(stats.artifact_misses, 1);
    assert_eq!(stats.artifact_hits, 0);
    assert_eq!(stats.resident_artifacts, 1);
    assert_eq!(stats.program_misses, 0, "no compilation before the first simulate");

    let artifacts = session.artifacts(ModelKind::AlexNet).expect("cached");
    let arch = session.config().arch;
    artifacts.simulate(arch, SparsityConfig::DenseBaseline).expect("simulates");
    artifacts.simulate(arch, SparsityConfig::HybridSparsity).expect("simulates");
    let stats = session.cache_stats();
    assert_eq!(stats.artifact_hits, 1);
    assert_eq!(stats.program_misses, 1, "both mappings compile under one miss");
    assert_eq!(stats.program_hits, 1);

    // A second model is a second miss; the aggregate `absorb` adds fields.
    session.artifacts(ModelKind::MobileNetV2).expect("prepares");
    let stats = session.cache_stats();
    assert_eq!(stats.artifact_misses, 2);
    assert_eq!(stats.resident_artifacts, 2);
    let mut total = SessionCacheStats::default();
    total.absorb(stats);
    total.absorb(stats);
    assert_eq!(total.artifact_misses, 4);
    assert_eq!(total.total_requests(), 2 * stats.total_requests());
}
