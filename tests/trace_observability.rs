//! The observability layer's contract:
//!
//! * tracing is invisible to the numbers — a DSE sweep renders the
//!   bit-identical report with a collector installed and without one;
//! * the Chrome trace-event export is well-formed JSON whose spans cover
//!   the pipeline phases and nest properly per thread;
//! * the serving daemon's `Stats` response is a pure projection of the
//!   shared metrics registry, so an injected registry agrees with the wire
//!   answer counter for counter.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use db_pim::prelude::*;
use dbpim_bench::dse::render_report;
use dbpim_serve::{Client, ServeConfig, Server};
use dbpim_trace::{phase_summary, ChromeTrace, MetricsRegistry, SpanRecord, TraceCollector};
use serde::value::Value;

/// The collector install is process-global; every test that installs one
/// holds this lock so parallel test threads never observe foreign spans.
fn trace_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn small_config() -> PipelineConfig {
    let mut config = PipelineConfig::fast();
    config.width_mult = 0.25;
    config.calibration_images = 1;
    config.evaluation_images = 2;
    config
}

fn small_spec() -> DseSpec {
    let grid = ArchGrid::around(ArchConfig::paper()).with_macros(vec![2, 4]);
    DseSpec::new(grid, vec![ModelKind::AlexNet])
}

/// Runs the small sweep and returns its rendered report, tracing into
/// `collector` when one is given.
fn traced_sweep(collector: Option<&Arc<TraceCollector>>) -> String {
    if let Some(collector) = collector {
        dbpim_trace::install(Arc::clone(collector));
    }
    let driver = DseDriver::new(small_config()).expect("valid config");
    let report = driver.run(&small_spec()).expect("sweep runs");
    if collector.is_some() {
        dbpim_trace::uninstall();
    }
    render_report(&report)
}

/// A collector-installed sweep renders the bit-identical report an
/// uninstalled run renders: observability never changes the numbers.
#[test]
fn traced_and_untraced_sweeps_render_identical_reports() {
    let _guard = trace_lock().lock().expect("trace test lock");
    let baseline = traced_sweep(None);
    let collector = Arc::new(TraceCollector::new());
    let traced = traced_sweep(Some(&collector));
    assert_eq!(baseline, traced, "tracing changed the rendered report");
    assert!(!collector.snapshot().is_empty(), "the traced run collected no spans");
}

/// The traced sweep covers the pipeline phases and the per-layer simulator
/// spans, and the Chrome export of those spans is well-formed JSON with
/// one complete event per span.
#[test]
fn chrome_export_covers_pipeline_phases_and_parses() {
    let _guard = trace_lock().lock().expect("trace test lock");
    let collector = Arc::new(TraceCollector::new());
    traced_sweep(Some(&collector));
    let spans = collector.snapshot();

    let phases = ["pipeline.quantize", "pipeline.fta", "pipeline.compile", "pipeline.simulate"];
    for phase in phases {
        assert!(spans.iter().any(|s| s.name == phase), "no `{phase}` span in the sweep trace");
    }
    assert!(spans.iter().any(|s| s.name == "sim.layer"), "no per-layer simulator spans");
    assert!(spans.iter().any(|s| s.name == "dse.point"), "no per-point DSE spans");

    // The summary table sees every span the export sees.
    let summary = phase_summary(&spans);
    let total: u64 = summary.iter().map(|row| row.count).sum();
    assert_eq!(total, spans.len() as u64);

    let json = ChromeTrace::render(&spans);
    let value: Value = serde_json::from_str(&json).expect("the export is well-formed JSON");
    let document = value.as_map().expect("object document");
    let events = serde::value::get_field(document, "traceEvents")
        .and_then(Value::as_seq)
        .expect("traceEvents array");
    // One complete (`ph:"X"`) event per span, plus the lane's labelling
    // metadata: one `process_name` and one `thread_name` per thread.
    let threads: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.thread).collect();
    assert_eq!(events.len(), spans.len() + 1 + threads.len());
    let mut complete = 0usize;
    let mut metadata = 0usize;
    for event in events {
        let event = event.as_map().expect("event object");
        assert!(serde::value::get_field(event, "name").and_then(Value::as_str).is_some());
        match serde::value::get_field(event, "ph").and_then(Value::as_str) {
            Some("X") => {
                complete += 1;
                assert!(serde::value::get_field(event, "ts").is_some());
                assert!(serde::value::get_field(event, "dur").is_some());
            }
            Some("M") => metadata += 1,
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert_eq!(complete, spans.len());
    assert_eq!(metadata, 1 + threads.len());
}

/// Spans on one thread either nest or are disjoint — never partially
/// overlapping — and a deeper span lies inside some shallower one.
#[test]
fn spans_nest_per_thread() {
    let _guard = trace_lock().lock().expect("trace test lock");
    let collector = Arc::new(TraceCollector::new());
    traced_sweep(Some(&collector));
    let spans = collector.snapshot();
    assert!(!spans.is_empty());

    let end = |s: &SpanRecord| s.start_micros + s.duration_micros;
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.thread != b.thread {
                continue;
            }
            let partial_overlap =
                a.start_micros < b.start_micros && b.start_micros < end(a) && end(a) < end(b);
            assert!(
                !partial_overlap,
                "spans `{}` and `{}` on thread {} partially overlap",
                a.name, b.name, a.thread
            );
        }
        if a.depth > 0 {
            assert!(
                spans.iter().any(|p| {
                    p.thread == a.thread
                        && p.depth < a.depth
                        && p.start_micros <= a.start_micros
                        && end(a) <= end(p)
                }),
                "span `{}` at depth {} has no enclosing shallower span",
                a.name,
                a.depth
            );
        }
    }
}

/// The daemon's `Stats` answer equals the injected registry's own view:
/// the wire response is a projection of the shared `MetricsRegistry`, not
/// a second set of books.
#[test]
fn serve_stats_mirror_the_shared_registry() {
    let registry = Arc::new(MetricsRegistry::new());
    let handle = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        poll_interval: Duration::from_millis(50),
        pipeline: small_config(),
        metrics: Some(Arc::clone(&registry)),
        ..ServeConfig::default()
    })
    .expect("server spawns");

    let mut client = Client::connect(handle.addr()).expect("connects");
    client.ping().expect("pings");
    client.ping().expect("pings");
    let stats = client.stats().expect("stats answer");

    assert_eq!(stats.requests, registry.counter("serve.requests"));
    assert_eq!(stats.errors, registry.counter("serve.errors"));
    assert_eq!(stats.connections, registry.counter("serve.connections"));
    assert_eq!(stats.requests, 3, "two pings plus the stats request itself");
    assert_eq!(stats.connections, 1);

    let ping = stats
        .latency
        .iter()
        .find(|row| row.request == "Ping")
        .expect("ping latency histogram on the wire");
    let local = registry.histogram("serve.latency.Ping").expect("ping histogram in the registry");
    assert_eq!(ping.histogram, local);
    assert_eq!(ping.histogram.count, 2);

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// A daemon in `--trace-buffer` mode records `serve.request` spans that
/// carry the caller's propagated trace context, and `TraceSnapshot`
/// drains them over the wire: the first drain returns the spans, the
/// second returns an empty buffer.
#[test]
fn trace_snapshot_drains_context_tagged_request_spans() {
    let _guard = trace_lock().lock().expect("trace test lock");
    let handle = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        poll_interval: Duration::from_millis(50),
        pipeline: small_config(),
        trace_buffer: Some(4096),
        ..ServeConfig::default()
    })
    .expect("server spawns");

    let mut client = Client::connect(handle.addr()).expect("connects");
    client.ping().expect("pings");
    let context = dbpim_serve::TraceContext {
        fleet: "ci-fleet".to_string(),
        point: "alexnet/int8@2x64".to_string(),
        parent_span: 99,
    };
    client
        .explore_streaming_traced(&small_spec(), None, None, Some(context), |_, _| {})
        .expect("traced exploration runs");

    let snapshot = client.trace_snapshot().expect("trace snapshot answer");
    assert_eq!(snapshot.pid, u64::from(std::process::id()), "in-process daemon shares our pid");
    assert_eq!(snapshot.dropped, 0);
    let request_span = snapshot
        .spans
        .iter()
        .find(|span| span.name == "serve.request" && span.arg("kind") == Some("Explore"))
        .expect("an Explore serve.request span was recorded");
    assert_eq!(request_span.arg("fleet"), Some("ci-fleet"));
    assert_eq!(request_span.arg("point"), Some("alexnet/int8@2x64"));
    assert_eq!(request_span.arg("parent_span"), Some("99"));
    assert!(request_span.id != 0, "recorded spans carry non-sentinel ids");
    // The pipeline work executed inside the daemon landed in the same buffer.
    assert!(snapshot.spans.iter().any(|span| span.name == "pipeline.simulate"));

    let drained = client.trace_snapshot().expect("second snapshot");
    // Draining twice yields at most the spans recorded since the first
    // drain (the TraceSnapshot request itself); the explore spans are gone.
    assert!(
        drained.spans.iter().all(|span| span.name == "serve.request"),
        "first drain cleared the buffer"
    );

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
    dbpim_trace::uninstall();
}

/// `MetricsSnapshot` ships the daemon's registry over the wire, and its
/// Prometheus rendering exposes the serve counters.
#[test]
fn metrics_snapshot_renders_prometheus_counters() {
    let handle = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        poll_interval: Duration::from_millis(50),
        pipeline: small_config(),
        ..ServeConfig::default()
    })
    .expect("server spawns");

    let mut client = Client::connect(handle.addr()).expect("connects");
    client.ping().expect("pings");
    client.ping().expect("pings");
    let metrics = client.metrics_snapshot().expect("metrics answer");
    let text = metrics.render_prometheus();
    assert!(text.contains("# TYPE serve_requests counter\nserve_requests 3\n"), "{text}");
    assert!(text.contains("# TYPE serve_connections counter\nserve_connections 1\n"), "{text}");
    assert!(text.contains("# TYPE serve_latency_Ping histogram\n"), "{text}");
    assert!(text.contains("serve_latency_Ping_count 2\n"), "{text}");

    client.shutdown().expect("shutdown acknowledged");
    handle.join().expect("daemon exits cleanly");
}

/// Without an installed collector the macros hand out disabled guards and
/// record nothing; installing flips the global switch, uninstalling flips
/// it back.
#[test]
fn disabled_tracing_records_nothing() {
    let _guard = trace_lock().lock().expect("trace test lock");
    assert!(!dbpim_trace::enabled());
    {
        let _span = dbpim_trace::span!("test.noop", ignored = 1);
    }
    let collector = Arc::new(TraceCollector::new());
    dbpim_trace::install(Arc::clone(&collector));
    assert!(dbpim_trace::enabled());
    {
        let _span = dbpim_trace::span!("test.recorded", key = "value");
    }
    dbpim_trace::uninstall();
    assert!(!dbpim_trace::enabled());
    {
        let _span = dbpim_trace::span!("test.after", ignored = 2);
    }
    let spans = collector.snapshot();
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].name, "test.recorded");
    assert_eq!(spans[0].args, vec![("key", "value".to_string())]);
}
