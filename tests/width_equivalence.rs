//! Cross-width equivalence suite: the CSD pipeline produces consistent,
//! lossless and bit-identical results at every supported operand width
//! (INT4 / INT8 / INT12 / INT16).
//!
//! Four layers are exercised per width:
//!
//! 1. **CSD round-trip** — exhaustive over the width's whole
//!    two's-complement range: encoding is lossless, canonical
//!    (non-adjacent), and decomposes into exactly `width.blocks()` dyadic
//!    blocks.
//! 2. **FTA fidelity** — Algorithm 1 with the width's query tables respects
//!    its threshold, and the extracted dyadic-block metadata reconstructs
//!    every approximated weight exactly.
//! 3. **Dense vs DB-PIM** — the bit-accurate macro's sparse (dyadic-block)
//!    path and dense (plain binary bit-cell) path agree bit-identically with
//!    each other and with the reference integer dot product.
//! 4. **INT8 goldens** — the width-parameterized machinery reproduces the
//!    historical INT8 results exactly: `CsdWord::encode(v, Int8)` equals
//!    `CsdWord::from_i8(v)`, `QueryTable::for_width(Int8, t)` equals
//!    `QueryTable::new(t)`, and a width-`Int8` sweep is bit-identical to the
//!    pre-existing `Pipeline` path (no goldens re-recorded).

use db_pim::prelude::*;
use dbpim_csd::CsdError;
use dbpim_fta::metadata::FilterMetadata;
use dbpim_fta::{FilterApprox, QueryTable};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Deterministic in-range weight vectors for one width.
fn weight_cases(seed: u64, width: OperandWidth, cases: usize, max_len: usize) -> Vec<Vec<i32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ u64::from(width.bits()));
    (0..cases)
        .map(|_| {
            let len = rng.gen_range(1..max_len);
            (0..len).map(|_| rng.gen_range(width.min_value()..=width.max_value())).collect()
        })
        .collect()
}

fn reference_dot(weights: &[i32], inputs: &[i8]) -> i64 {
    weights.iter().zip(inputs).map(|(&w, &x)| i64::from(w) * i64::from(x)).sum()
}

// ---------------------------------------------------------------- layer 1

/// Exhaustive CSD round-trip per width: lossless, canonical, block-exact.
#[test]
fn csd_round_trip_is_exhaustive_per_width() {
    for width in OperandWidth::all() {
        for value in width.min_value()..=width.max_value() {
            let word = CsdWord::encode(value, width)
                .unwrap_or_else(|e| panic!("{width} value {value} failed to encode: {e}"));
            assert_eq!(word.width(), width.digits());
            assert_eq!(word.to_i32(), value, "{width} round trip failed for {value}");
            assert!(word.nonzero_digits() <= width.max_phi(), "{width} value {value}");
            for pair in word.digits().windows(2) {
                assert!(
                    !(pair[0].is_nonzero() && pair[1].is_nonzero()),
                    "{width}: adjacent non-zero digits for {value}"
                );
            }
            let blocks = word.dyadic_blocks();
            assert_eq!(blocks.len(), width.blocks(), "{width} value {value}");
            assert_eq!(blocks.value(), value, "{width} value {value}");
            assert_eq!(blocks.comp_count() as u32, word.nonzero_digits(), "{width} value {value}");
        }
        // Both ends just past the range are rejected, never mis-encoded.
        for out_of_range in [width.min_value() - 1, width.max_value() + 1] {
            assert_eq!(
                CsdWord::encode(out_of_range, width),
                Err(CsdError::ValueOutOfRange { value: out_of_range, bits: width.bits() })
            );
        }
    }
}

/// The INT8 instance of the width-generic encoder is the legacy encoder.
#[test]
fn int8_encoding_matches_the_legacy_from_i8_path() {
    for v in i8::MIN..=i8::MAX {
        let legacy = CsdWord::from_i8(v);
        let wide = CsdWord::encode(i32::from(v), OperandWidth::Int8).unwrap();
        assert_eq!(legacy, wide, "value {v}");
        assert_eq!(dbpim_csd::phi(i32::from(v)), legacy.nonzero_digits());
    }
}

// ---------------------------------------------------------------- layer 2

/// Query tables per width: members respect the threshold, nearest lookups
/// are truly nearest, and the INT8 tables equal the legacy construction.
#[test]
fn query_tables_are_consistent_per_width() {
    for width in OperandWidth::all() {
        let tables = QueryTables::for_width(width);
        assert_eq!(tables.width(), width);
        assert_eq!(tables.table(0).unwrap().values(), &[0]);
        for threshold in 0..=2 {
            let table = tables.table(threshold).unwrap();
            for &v in table.values() {
                assert!(width.contains(v));
                assert!(dbpim_csd::phi(v) <= threshold, "{width} T({threshold}) member {v}");
            }
            // Nearest is truly nearest on a deterministic probe grid
            // covering the whole range plus the exact boundaries.
            let span = i64::from(width.max_value()) - i64::from(width.min_value());
            let probes = (0..=64)
                .map(|i| (i64::from(width.min_value()) + span * i / 64) as i32)
                .chain([width.min_value(), -1, 0, 1, width.max_value()]);
            for probe in probes {
                let n = table.nearest(probe);
                let err = (i64::from(probe) - i64::from(n)).abs();
                for &candidate in table.values() {
                    assert!(
                        (i64::from(probe) - i64::from(candidate)).abs() >= err,
                        "{width} T({threshold}): {candidate} closer to {probe} than {n}"
                    );
                }
            }
        }
    }
    // INT8 goldens: the parameterized tables equal the legacy ones.
    for threshold in 0..=2 {
        assert_eq!(
            QueryTable::for_width(OperandWidth::Int8, threshold).unwrap(),
            QueryTable::new(threshold).unwrap()
        );
    }
}

// ---------------------------------------------------------------- layer 3

/// FTA approximation + metadata extraction is lossless at every width and
/// the metadata layout follows the width's bit budget.
#[test]
fn fta_fidelity_is_preserved_per_width() {
    for width in OperandWidth::all() {
        let tables = QueryTables::for_width(width);
        for weights in weight_cases(0x51D7, width, 24, 64) {
            let filter = FilterApprox::approximate(&weights, &tables).unwrap();
            assert_eq!(filter.width(), width);
            assert!(filter.threshold() <= 2);
            let table = tables.table(filter.threshold()).unwrap();
            for &v in filter.values() {
                assert!(table.contains(v), "{width}: {v} not in T({})", filter.threshold());
            }

            let metadata = FilterMetadata::from_filter(0, &filter);
            assert_eq!(metadata.width, width);
            for (slots, &approx) in metadata.weights.iter().zip(filter.values()) {
                assert_eq!(slots.reconstruct(), approx, "{width}: lossy metadata");
                for block in slots.slots.iter().flatten() {
                    assert!((block.db_index as usize) < width.blocks(), "{width}");
                }
            }
            assert_eq!(
                metadata.metadata_bits(),
                width.metadata_bits_per_cell() as usize * metadata.allocated_cells()
            );
            assert!(metadata.stored_cells() <= metadata.allocated_cells());
        }
    }
}

// ---------------------------------------------------------------- layer 4

/// The DB-PIM sparse path and the dense path produce bit-identical dot
/// products (equal to the integer reference) at every width, with and
/// without input-column skipping.
#[test]
fn dense_and_sparse_paths_agree_bit_identically_per_width() {
    let arch = ArchConfig::paper();
    for width in OperandWidth::all() {
        let tables = QueryTables::for_width(width);
        let dense_capacity = arch.dense_filters_per_macro_for(width).unwrap();
        for (case, weights) in weight_cases(0xD07, width, 12, 48).into_iter().enumerate() {
            let len = weights.len();
            let mut rng = ChaCha8Rng::seed_from_u64(0x1417 + case as u64);
            let inputs: Vec<i8> = (0..len).map(|_| rng.gen()).collect();
            let filter = FilterApprox::approximate(&weights, &tables).unwrap();
            let approximated = filter.values().to_vec();
            let expected = reference_dot(&approximated, &inputs);
            let meta = FilterMetadata::from_filter(0, &filter);

            for ipu in [InputPreprocessor::without_sparsity(), InputPreprocessor::new()] {
                // DB-PIM sparse path on the dyadic-block metadata.
                let mut pim = PimMacro::new(arch).unwrap();
                let sparse =
                    pim.execute_sparse_tile(std::slice::from_ref(&meta), &inputs, &ipu).unwrap();
                assert_eq!(
                    sparse.outputs[0], expected,
                    "{width} case {case}: sparse path diverges from the reference"
                );

                // Dense path on the same (approximated) weights: the two
                // hardware mappings must agree bit-for-bit.
                let filters: Vec<Vec<i32>> = vec![approximated.clone(); dense_capacity];
                let mut pim = PimMacro::new(arch).unwrap();
                let dense =
                    pim.execute_dense_tile_for_width(&filters, &inputs, &ipu, width).unwrap();
                for &out in &dense.outputs {
                    assert_eq!(
                        out, expected,
                        "{width} case {case}: dense path diverges from the reference"
                    );
                }
                assert_eq!(sparse.outputs[0], dense.outputs[0]);
            }
        }
    }
}

// ---------------------------------------------------------------- layer 5

/// Compiled programs carry the width: dense mappings use one bit-cell per
/// weight bit, metadata streams follow the width's per-cell bit budget, and
/// the nominal work is width-invariant.
#[test]
fn compiled_programs_follow_the_width_geometry() {
    let model = zoo::tiny_cnn(10, 3).expect("model builds");
    let profile = InputSparsityProfile::new();
    let mut nominal_macs = Vec::new();
    for width in OperandWidth::all() {
        let approx = ModelApprox::from_model_wide(&model, width).expect("approximates");
        let workloads = extract_workloads(&model, Some(&approx), &profile).expect("extracts");
        let compiler = Compiler::with_width(ArchConfig::paper(), width).expect("compiles");
        let dense = compiler.compile(&workloads, MappingMode::Dense).expect("dense compiles");
        let sparse = compiler.compile(&workloads, MappingMode::DbPim).expect("sparse compiles");
        assert_eq!(dense.operand_bits, width.bits());
        assert_eq!(sparse.operand_bits, width.bits());
        assert_eq!(dense.nominal_macs(), sparse.nominal_macs());
        nominal_macs.push(dense.nominal_macs());

        for layer in &dense.layers {
            for inst in &layer.instructions {
                if let dbpim_compiler::Instruction::LoadWeights { cells_per_weight, .. } = inst {
                    assert_eq!(u32::from(*cells_per_weight), width.bits(), "{width}");
                }
            }
        }
        // The simulator accepts the program and reports more dense compute
        // energy at wider operands (more active cells per weight).
        let sim = Simulator::new(SimConfig::dense_baseline()).expect("simulator");
        let report = sim.simulate(&dense).expect("simulates");
        assert!(report.total_cycles() > 0);
    }
    // The functional work does not depend on the operand width.
    assert!(nominal_macs.windows(2).all(|w| w[0] == w[1]), "{nominal_macs:?}");
}

// ---------------------------------------------------------------- layer 6

/// The INT8 results of the width-parameterized session layer are
/// byte-identical to the pre-existing `Pipeline` path (the INT8 goldens are
/// preserved, not re-recorded), and a width sweep produces one entry per
/// requested width with fidelity only on INT8.
#[test]
fn int8_sweep_results_remain_byte_identical_to_the_pipeline() {
    let mut config = PipelineConfig::fast();
    config.width_mult = 0.25;
    config.calibration_images = 1;
    config.evaluation_images = 2;
    assert_eq!(config.operand_width, OperandWidth::Int8);

    // Golden: the historical single-model pipeline result.
    let pipeline = Pipeline::new(config).expect("valid config");
    let golden = pipeline.run_kind(ModelKind::AlexNet).expect("pipeline runs");

    // A sweep with an explicit INT8 width axis must reproduce it exactly.
    let runner = BatchRunner::new(config).expect("valid config");
    let spec = SweepSpec::new(vec![ModelKind::AlexNet]).with_widths(vec![OperandWidth::Int8]);
    let report = runner.run_with_fidelity(&spec, true).expect("sweep runs");
    assert_eq!(report.entries.len(), 1);
    assert_eq!(report.entries[0].width, OperandWidth::Int8);
    assert_eq!(
        report.entries[0].result, golden,
        "INT8 sweep result diverges from the historical pipeline"
    );

    // The full width axis: one entry per width, fidelity only at INT8, and
    // the INT8 entry still byte-identical to the golden.
    let spec = SweepSpec::new(vec![ModelKind::AlexNet])
        .with_sparsity(vec![SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity])
        .with_widths(OperandWidth::all().to_vec());
    let report = runner.run_with_fidelity(&spec, true).expect("width sweep runs");
    assert_eq!(report.entries.len(), 4);
    assert_eq!(report.prepared_models, 4);
    assert_eq!(report.simulated_runs, 8);
    for (entry, width) in report.entries.iter().zip(OperandWidth::all()) {
        assert_eq!(entry.kind, ModelKind::AlexNet);
        assert_eq!(entry.width, width);
        assert_eq!(entry.result.runs.len(), 2);
        if width == OperandWidth::Int8 {
            assert!(entry.result.fidelity.is_some(), "INT8 keeps fidelity");
        } else {
            assert!(entry.result.fidelity.is_none(), "{width} has no INT8 fidelity");
        }
        let hybrid = entry.result.speedup(SparsityConfig::HybridSparsity);
        assert!(hybrid > 1.0, "{width}: hybrid speedup {hybrid}");
        let u = entry.result.utilization();
        assert!(u > 0.0 && u <= 1.0, "{width}: utilization {u}");
    }
    let int8_entry =
        report.result_at_width(ModelKind::AlexNet, OperandWidth::Int8).expect("INT8 swept");
    assert_eq!(int8_entry.fta_stats, golden.fta_stats);
    for sparsity in [SparsityConfig::DenseBaseline, SparsityConfig::HybridSparsity] {
        assert_eq!(
            int8_entry.run(sparsity),
            golden.run(sparsity),
            "INT8 {sparsity:?} run diverges from the historical pipeline"
        );
    }
}
