//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API the DB-PIM benches use —
//! `Criterion::default().sample_size(n)`, `bench_function`, `Bencher::iter`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — as a
//! small wall-clock harness: per sample it times one closure invocation and
//! reports min / median / mean over the sample set. No statistics beyond
//! that, no HTML reports, no outlier analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warmup: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30, warmup: 3 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
        for _ in 0..self.warmup {
            bencher.elapsed = Duration::ZERO;
            bencher.iterations = 0;
            routine(&mut bencher);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.elapsed = Duration::ZERO;
            bencher.iterations = 0;
            routine(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed / u32::try_from(bencher.iterations).unwrap_or(1));
            }
        }
        if samples.is_empty() {
            println!("{name:<48} (no iterations)");
            return self;
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / u32::try_from(samples.len()).unwrap_or(1);
        println!(
            "{name:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            samples.len()
        );
        self
    }
}

/// Times closure invocations for one sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times one invocation of `routine`, keeping its output alive so the
    /// optimizer cannot elide the work.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        black_box(out);
    }
}

/// Declares a benchmark group: a function running each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
