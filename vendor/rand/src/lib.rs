//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface the DB-PIM workspace uses — [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`) and [`SeedableRng`] — backed by
//! textbook uniform-sampling conversions (24/53-bit mantissa floats,
//! widening-multiply bounded integers). The concrete generator lives in the
//! sibling `rand_chacha` stand-in.
//!
//! Streams are *not* bit-compatible with upstream rand; every consumer in
//! this workspace only relies on determinism-per-seed and distribution
//! quality, both of which hold.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it to the full
    /// internal key (SplitMix64, as upstream rand does).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream rand).
pub trait StandardSample: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($ty:ty => $via:ident),*) => {$(
        impl StandardSample for $ty {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $ty
            }
        }
    )*};
}

standard_int!(i8 => next_u32, u8 => next_u32, i16 => next_u32, u16 => next_u32,
              i32 => next_u32, u32 => next_u32, i64 => next_u64, u64 => next_u64,
              usize => next_u64, isize => next_u64);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire's method
/// without the rejection step; the bias is < 2^-64 per draw, far below
/// anything the statistical tests in this workspace can resolve).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = bounded_u64(rng, span);
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    // Full u64/i64 domain: a raw draw is already uniform.
                    return <$ty as StandardSample>::sample(rng);
                }
                let offset = bounded_u64(rng, span as u64);
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

int_range!(i8, u8, i16, u16, i32, u32, i64, u64, usize, isize);

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let u: f32 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample over the full domain of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        let u: f64 = StandardSample::sample(self);
        u < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// SplitMix64: the seed-expansion generator upstream rand uses for
/// `seed_from_u64`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the expander from a 64-bit state.
    #[must_use]
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_sampling_stays_in_range() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(0usize..17);
            assert!(x < 17);
            let y: i8 = rng.gen_range(-5i8..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SplitMix64::new(2);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SplitMix64::new(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let ratio = hits as f64 / 20_000.0;
        assert!((ratio - 0.3).abs() < 0.02, "ratio {ratio}");
    }
}
