//! Offline stand-in for `rand_chacha`: a faithful ChaCha8 keystream
//! generator behind the vendored `rand` traits.
//!
//! The block function is the real ChaCha algorithm (Bernstein, 2008) with 8
//! double-rounds, so the stream has the full statistical quality the
//! synthetic-data generators in `dbpim-tensor` rely on. Seeding follows
//! upstream's `seed_from_u64` approach (SplitMix64 key expansion); output is
//! deterministic per seed but not bit-compatible with upstream.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng, SplitMix64};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha state: constants, 8 key words, counter, 3 nonce
    /// words.
    state: [u32; 16],
    /// Buffered keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

impl ChaCha8Rng {
    /// Creates a generator from a 32-byte key (the upstream `from_seed`
    /// entry point).
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // words 12..16: block counter + nonce, all zero initially.
        Self { state, buffer: [0u32; 16], index: 16 }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.buffer.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter across words 12 and 13.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        (high << 32) | low
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut expander = SplitMix64::new(state);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&expander.next_u64().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 7539 test vector structure check: the ChaCha20 quarter round.
    #[test]
    fn quarter_round_matches_rfc7539_vector() {
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let sa: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let sb: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let sc: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn keystream_bits_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let ones: u32 = (0..4096).map(|_| rng.next_u32().count_ones()).sum();
        let total = 4096.0 * 32.0;
        let ratio = f64::from(ones) / total;
        assert!((ratio - 0.5).abs() < 0.01, "one-bit ratio {ratio}");
    }
}
