//! Error type shared by serialization and deserialization.

use std::fmt;

/// A (de)serialization failure: a human-readable message describing the
/// mismatch between a value tree and the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Self { message: message.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
