//! `Serialize` / `Deserialize` implementations for std types.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

use crate::value::{type_error, Value};
use crate::{Deserialize, Error, Serialize};

// ---------------------------------------------------------------- integers

fn expect_i64(value: &Value) -> Result<i64, Error> {
    match *value {
        Value::I64(n) => Ok(n),
        Value::U64(n) => {
            i64::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
        }
        _ => Err(type_error("integer", value)),
    }
}

fn expect_u64(value: &Value) -> Result<u64, Error> {
    match *value {
        Value::U64(n) => Ok(n),
        Value::I64(n) => {
            u64::try_from(n).map_err(|_| Error::custom(format!("integer {n} is negative")))
        }
        _ => Err(type_error("integer", value)),
    }
}

macro_rules! signed_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = expect_i64(value)?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64);

macro_rules! unsigned_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = expect_u64(value)?;
                <$ty>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = expect_i64(value)?;
        isize::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for isize")))
    }
}

// ------------------------------------------------------------------ floats

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(x) => Ok(x),
            Value::I64(n) => Ok(n as f64),
            Value::U64(n) => Ok(n as f64),
            // Non-finite floats serialize to JSON `null`.
            Value::Null => Ok(f64::NAN),
            _ => Err(type_error("float", value)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

// -------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(type_error("bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_string).ok_or_else(|| type_error("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| type_error("string", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq().ok_or_else(|| type_error("sequence", value))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = value.as_seq().ok_or_else(|| type_error("sequence", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected an array of {N} elements, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed.try_into().map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_seq().ok_or_else(|| type_error("sequence", value))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a tuple of {expected} elements, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ------------------------------------------------------------------- maps

/// A type usable as a JSON map key (stringified on serialization).
pub trait MapKey: Sized {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the key back from its string form.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the string is not a valid key.
    fn from_key(key: &str) -> Result<Self, Error>;
}

macro_rules! int_key_impl {
    ($($ty:ty),*) => {$(
        impl MapKey for $ty {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::custom(format!("invalid {} map key `{key}`", stringify!($ty))))
            }
        }
    )*};
}

int_key_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: MapKey + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(String, Value)> = entries.map(|(k, v)| (k.to_key(), v.to_value())).collect();
    // HashMap iteration order is unspecified; sort for deterministic output.
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Map(out)
}

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| type_error("map", value))?;
        entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| type_error("map", value))?;
        entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
    }
}

// --------------------------------------------------------------- durations

/// `std::time::Duration` uses real serde's struct representation:
/// `{"secs": u64, "nanos": u32}`.
impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value.as_map().ok_or_else(|| type_error("duration map", value))?;
        let field = |name: &str| -> Result<u64, Error> {
            entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| expect_u64(v))
                .ok_or_else(|| Error::custom(format!("missing field `{name}`")))?
        };
        let nanos = u32::try_from(field("nanos")?)
            .map_err(|_| Error::custom("duration nanos out of range"))?;
        Ok(std::time::Duration::new(field("secs")?, nanos))
    }
}
