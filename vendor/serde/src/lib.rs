//! Offline stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal, self-contained replacement that keeps the
//! public surface the DB-PIM crates rely on: the `Serialize` / `Deserialize`
//! traits, `#[derive(Serialize, Deserialize)]`, and (via the sibling
//! `serde_json` stand-in) JSON round-tripping.
//!
//! Unlike real serde, serialization goes through an explicit dynamic
//! [`value::Value`] tree instead of a visitor pair. That keeps the hand-rolled
//! derive macro (no `syn`/`quote` offline) small while preserving the
//! externally-tagged data model real serde_json produces for the shapes used
//! in this workspace: structs become JSON objects, unit enum variants become
//! strings, and data-carrying variants become single-entry objects.

#![forbid(unsafe_code)]

mod error;
mod impls;
pub mod value;

pub use error::Error;
pub use serde_derive::{Deserialize, Serialize};

use value::Value;

/// A type that can be converted into a dynamic [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a dynamic [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value tree does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent from the map.
    ///
    /// The default is an error; `Option<T>` overrides it to produce `None`,
    /// matching serde's treatment of missing optional fields.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] unless the implementor supports absent fields.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
