//! The dynamic value tree every `Serialize` / `Deserialize` impl goes
//! through.

use crate::Error;

/// A dynamically typed serialization value, mirroring the JSON data model.
///
/// Maps are ordered `(key, value)` pairs so struct serialization is
/// deterministic (field declaration order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for unit structs and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer that does not fit in `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets this value as an externally tagged enum variant: a map with
    /// exactly one `(variant, payload)` entry.
    #[must_use]
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Looks up a struct field in serialized map entries.
#[must_use]
pub fn get_field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Helper for derived impls: an "expected X, found Y" error.
#[must_use]
pub fn type_error(expected: &str, found: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", found.kind()))
}
