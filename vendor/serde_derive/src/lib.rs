//! Offline stand-in for `serde_derive`.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable in
//! this offline build environment. This implementation parses the item
//! declaration directly from the `proc_macro` token stream — which is
//! sufficient because, for derive purposes, only *structure* matters: the
//! item's name, generic parameters, and field/variant names. Field types are
//! never needed; the generated code lets trait dispatch
//! (`serde::Serialize::to_value` / `serde::Deserialize::from_value`) resolve
//! them through inference.
//!
//! Supported shapes (everything the DB-PIM workspace uses):
//! * unit / tuple / named-field structs, with optional generic parameters;
//! * enums with any mix of unit, tuple and struct variants.
//!
//! The serialized data model matches serde_json's externally tagged default:
//! structs are maps, unit variants are strings, data variants are
//! single-entry maps.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by generating a `to_value` conversion.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize` by generating a `from_value` conversion.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

/// The shape of a struct body or an enum variant payload.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// Generic parameter names, e.g. `["T"]` for `Tensor<T>`.
    params: Vec<String>,
    /// Any declared bounds per parameter, verbatim, e.g. `"Clone + Default"`.
    bounds: Vec<String>,
    body: Body,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let item = parse_item(input);
    let code = match which {
        Trait::Serialize => gen_serialize(&item),
        Trait::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("derive output parses")
}

// ------------------------------------------------------------------ parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);
    let keyword = match &tokens[pos] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    };
    pos += 1;

    let name = match &tokens[pos] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected item name, found `{other}`"),
    };
    pos += 1;

    let (params, bounds) = parse_generics(&tokens, &mut pos);

    let body = match keyword.as_str() {
        "struct" => Body::Struct(parse_struct_body(&tokens, &mut pos)),
        "enum" => Body::Enum(parse_enum_body(&tokens[pos..])),
        other => panic!("cannot derive for `{other}` items"),
    };

    Item { name, params, bounds, body }
}

/// Skips outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Parses `<A, B: Bound, ...>` if present, returning parameter names and
/// their verbatim bound strings (empty when unbounded).
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> (Vec<String>, Vec<String>) {
    let mut params = Vec::new();
    let mut bounds = Vec::new();
    if !matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (params, bounds);
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut current_name: Option<String> = None;
    let mut current_bound = String::new();
    let mut in_bound = false;
    while depth > 0 {
        let token = tokens.get(*pos).expect("unterminated generic parameter list");
        *pos += 1;
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                if in_bound {
                    current_bound.push('<');
                }
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    if let Some(name) = current_name.take() {
                        params.push(name);
                        bounds.push(current_bound.trim().to_string());
                    }
                } else if in_bound {
                    current_bound.push('>');
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if let Some(name) = current_name.take() {
                    params.push(name);
                    bounds.push(current_bound.trim().to_string());
                }
                current_bound = String::new();
                in_bound = false;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 && !in_bound => {
                in_bound = true;
            }
            other => {
                if in_bound {
                    current_bound.push_str(&other.to_string());
                    current_bound.push(' ');
                } else if current_name.is_none() {
                    let text = other.to_string();
                    if text == "'" || text.starts_with('\'') {
                        panic!("lifetime parameters are not supported by the offline serde derive");
                    }
                    current_name = Some(text);
                }
            }
        }
    }
    (params, bounds)
}

fn parse_struct_body(tokens: &[TokenTree], pos: &mut usize) -> Fields {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Named(parse_named_fields(&inner))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Fields::Tuple(count_tuple_fields(&inner))
        }
        other => panic!("unsupported struct body: {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, skipping attributes, visibility and
/// type tokens (types may contain `<...>` with nested commas).
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => panic!("expected field name, found `{other}`"),
        };
        pos += 1;
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found `{other}`"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of a tuple struct/variant payload.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for token in tokens {
        trailing_comma = false;
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_enum_body(tokens: &[TokenTree]) -> Vec<Variant> {
    let group = match tokens.first() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("expected enum body, found {other:?}"),
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < inner.len() {
        skip_attrs_and_vis(&inner, &mut pos);
        if pos >= inner.len() {
            break;
        }
        let name = match &inner[pos] {
            TokenTree::Ident(ident) => ident.to_string(),
            other => panic!("expected variant name, found `{other}`"),
        };
        pos += 1;
        let fields = match inner.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                Fields::Named(parse_named_fields(&body))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                Fields::Tuple(count_tuple_fields(&body))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while pos < inner.len() {
            match &inner[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    pos += 1;
                    break;
                }
                _ => pos += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// --------------------------------------------------------------- generation

impl Item {
    /// `impl<T: Bound + ::serde::Serialize> ... for Name<T>` header pieces.
    fn impl_header(&self, trait_bound: &str) -> (String, String) {
        if self.params.is_empty() {
            return (String::new(), String::new());
        }
        let decls: Vec<String> = self
            .params
            .iter()
            .zip(&self.bounds)
            .map(|(param, bound)| {
                if bound.is_empty() {
                    format!("{param}: {trait_bound}")
                } else {
                    format!("{param}: {bound} + {trait_bound}")
                }
            })
            .collect();
        (format!("<{}>", decls.join(", ")), format!("<{}>", self.params.join(", ")))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, type_generics) = item.impl_header("::serde::Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => gen_serialize_fields(fields, "self.", None),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.fields {
                        Fields::Unit => format!(
                            "Self::{vname} => ::serde::value::Value::Str(\"{vname}\".to_string()),"
                        ),
                        Fields::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let values: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "Self::{vname}({binds}) => ::serde::value::Value::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::value::Value::Seq(vec![{values}]))]),",
                                binds = binds.join(", "),
                                values = values.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vname} {{ {binds} }} => ::serde::value::Value::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::value::Value::Map(vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {name}{type_generics} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

/// Serialization body for struct-shaped fields. `accessor` prefixes each
/// field (`self.` for structs, empty for bound variant fields).
fn gen_serialize_fields(fields: &Fields, accessor: &str, _variant: Option<&str>) -> String {
    match fields {
        Fields::Unit => "::serde::value::Value::Null".to_string(),
        Fields::Tuple(arity) => {
            let values: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&{accessor}{i})"))
                .collect();
            format!("::serde::value::Value::Seq(vec![{}])", values.join(", "))
        }
        Fields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{accessor}{f}))")
                })
                .collect();
            format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, type_generics) = item.impl_header("::serde::Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => gen_deserialize_struct(name, fields),
        Body::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {name}{type_generics} {{\n\
             fn from_value(__value: &::serde::value::Value) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!(
            "match __value {{\n\
                 ::serde::value::Value::Null | ::serde::value::Value::Map(_) => Ok(Self),\n\
                 other => Err(::serde::value::type_error(\"unit struct {name}\", other)),\n\
             }}"
        ),
        Fields::Tuple(arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __value.as_seq().ok_or_else(|| \
                     ::serde::value::type_error(\"tuple struct {name}\", __value))?;\n\
                 if __seq.len() != {arity} {{\n\
                     return Err(::serde::Error::custom(format!(\
                         \"expected {arity} elements for {name}, found {{}}\", __seq.len())));\n\
                 }}\n\
                 Ok(Self({elems}))",
                elems = elems.join(", ")
            )
        }
        Fields::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| gen_field_init(f)).collect();
            format!(
                "let __map = __value.as_map().ok_or_else(|| \
                     ::serde::value::type_error(\"struct {name}\", __value))?;\n\
                 Ok(Self {{ {inits} }})",
                inits = inits.join(", ")
            )
        }
    }
}

/// `field: <lookup + deserialize>` initializer for one named field.
fn gen_field_init(field: &str) -> String {
    format!(
        "{field}: match ::serde::value::get_field(__map, \"{field}\") {{\n\
             Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
             None => ::serde::Deserialize::missing_field(\"{field}\")?,\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{vname}\" => return Ok(Self::{vname}),", vname = v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|variant| {
            let vname = &variant.name;
            match &variant.fields {
                Fields::Unit => None,
                Fields::Tuple(arity) => {
                    let elems: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let __seq = __payload.as_seq().ok_or_else(|| \
                                 ::serde::value::type_error(\"payload of {name}::{vname}\", __payload))?;\n\
                             if __seq.len() != {arity} {{\n\
                                 return Err(::serde::Error::custom(\
                                     \"wrong payload arity for {name}::{vname}\"));\n\
                             }}\n\
                             Ok(Self::{vname}({elems}))\n\
                         }}",
                        elems = elems.join(", ")
                    ))
                }
                Fields::Named(fields) => {
                    let inits: Vec<String> = fields.iter().map(|f| gen_field_init(f)).collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let __map = __payload.as_map().ok_or_else(|| \
                                 ::serde::value::type_error(\"payload of {name}::{vname}\", __payload))?;\n\
                             Ok(Self::{vname} {{ {inits} }})\n\
                         }}",
                        inits = inits.join(", ")
                    ))
                }
            }
        })
        .collect();

    format!(
        "if let Some(__variant) = __value.as_str() {{\n\
             match __variant {{\n\
                 {unit_arms}\n\
                 other => return Err(::serde::Error::custom(format!(\
                     \"unknown unit variant `{{other}}` for {name}\"))),\n\
             }}\n\
         }}\n\
         let (__variant, __payload) = __value.as_variant().ok_or_else(|| \
             ::serde::value::type_error(\"enum {name}\", __value))?;\n\
         match __variant {{\n\
             {data_arms}\n\
             other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        data_arms = data_arms.join("\n")
    )
}
