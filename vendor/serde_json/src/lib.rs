//! Offline stand-in for `serde_json`: serializes the vendored serde
//! [`Value`] model to JSON text and parses it back.
//!
//! Numbers keep full round-trip fidelity: integers are emitted verbatim and
//! floats use Rust's shortest-round-trip `Display`. Non-finite floats (which
//! JSON cannot represent) are emitted as `1e999` / `-1e999` (which parse back
//! to the infinities) and `null` for NaN.

#![forbid(unsafe_code)]

use std::fmt;

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// A JSON serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes a value to compact JSON text.
///
/// # Errors
///
/// Infallible for the vendored value model; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------------ writer

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::U64(n) => {
            let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push_str("null");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "1e999" } else { "-1e999" });
    } else {
        // Rust's Display prints the shortest representation that round-trips.
        let text = format!("{x}");
        out.push_str(&text);
        // Keep the float-ness visible so the parser classifies it as F64
        // only when it matters; integral floats round-trip through I64 and
        // back via the numeric Deserialize impls, so nothing extra needed.
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        let found = self.peek()?;
        if found == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                byte as char, self.pos, found as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: expect `\uXXXX` low surrogate.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((unit - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Take the longest run of plain (unescaped) bytes and
                    // validate it as UTF-8 once. Validating per character —
                    // let alone over the whole remaining input, as an
                    // earlier version did — made parsing quadratic in
                    // document size (a 3 MB DSE snapshot took minutes to
                    // load; this path parses it in well under a second).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&next) = self.bytes.get(end) {
                        if next == b'"' || next == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(text);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let unit = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let x: f64 =
                text.parse().map_err(|_| Error::new(format!("invalid number `{text}`")))?;
            return Ok(Value::F64(x));
        }
        if let Some(digits) = text.strip_prefix('-') {
            let _ = digits;
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        } else {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        // Out-of-range integer: fall back to float semantics.
        let x: f64 = text.parse().map_err(|_| Error::new(format!("invalid number `{text}`")))?;
        Ok(Value::F64(x))
    }
}
